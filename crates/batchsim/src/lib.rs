//! # batchsim — case study #3: batch scheduling (the paper's future work)
//!
//! The paper's conclusion names batch scheduling — "Alea or Batsim and
//! data from the Parallel Workload Archive" — as the next domain where it
//! expects its level-of-detail conclusions to generalize. This crate
//! implements that case study: an EASY-backfilling batch-scheduling
//! simulator with **4 level-of-detail versions** (2 scheduler-overhead x
//! 2 job-runtime options), a PWA-style synthetic [workload] generator,
//! a production-RJMS-style [ground-truth emulator](ground_truth), and the
//! [`simcal`] integration ([`scenario`]) reusing case study
//! #1's structured losses unchanged.
//!
//! ## Example
//!
//! ```
//! use batchsim::prelude::*;
//! use simcal::prelude::*;
//!
//! let cfg = BatchEmulatorConfig::default();
//! let scenarios = dataset(&default_grid(1)[..1], &cfg, 2, 42);
//! let sim = BatchSimulator::new(BatchVersion::lowest_detail(), cfg.total_nodes);
//! let obj = objective(&sim, &scenarios,
//!     StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"));
//! let result = Calibrator::bo_gp(Budget::Evaluations(30), 1).calibrate(&obj);
//! assert!(result.loss.is_finite());
//! ```

pub mod ground_truth;
pub mod scenario;
pub mod simulator;
pub mod versions;
pub mod workload;

/// One-stop imports for case-study-3 users.
pub mod prelude {
    pub use crate::ground_truth::{
        dataset, default_grid, BatchEmulatorConfig, BatchGroundTruthRecord,
    };
    pub use crate::scenario::{objective, BatchScenario};
    pub use crate::simulator::{BatchOutput, BatchSimulator};
    pub use crate::versions::{BatchVersion, OverheadDetail, RuntimeDetail};
    pub use crate::workload::{generate, Job, WorkloadSpec};
}
