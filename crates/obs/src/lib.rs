//! # obs — zero-dependency observability for the lodcal workspace
//!
//! Structured tracing and metrics for the simulation kernel
//! (`dessim`), the calibration evaluator (`simcal`), the work-stealing
//! pool (`rayon`), and the level-of-detail sweep driver (`lodsel`):
//!
//! - **Hierarchical spans** — [`span!`] opens a named, monotonic-clock
//!   timed span; spans nest per thread and can be parented explicitly
//!   across pool threads with [`SpanGuard::enter_under`].
//! - **Typed counters** — the closed [`Counter`] enum names every
//!   counter in the workspace (kernel events, heap re-inserts, sharing
//!   re-solves, evaluator cache hits/misses, pool steals/parks).
//! - **Histograms** — [`Hist`] names fixed log-spaced-bucket latency
//!   histograms (per-evaluation latency).
//!
//! Everything funnels through a process-global [`Recorder`]. The
//! default recorder is a no-op behind a single relaxed atomic-bool
//! load, so instrumented hot paths cost nothing measurable when
//! tracing is disabled (see DESIGN.md "Observability" for the <2%
//! bench guarantee). Installing a [`TraceRecorder`] turns the same
//! call sites into an in-memory trace that serializes to a versioned
//! JSONL file (schema [`trace::SCHEMA_NAME`] v[`trace::SCHEMA_VERSION`]).
//!
//! ## Recording spans
//!
//! ```
//! use std::sync::Arc;
//!
//! let rec = Arc::new(obs::TraceRecorder::new());
//! obs::install(rec.clone());
//! {
//!     let _sweep = obs::span!("sweep", family = "toy");
//!     let _phase = obs::span!("calibrate"); // nests under "sweep"
//! } // both spans close here
//! obs::uninstall();
//!
//! let spans = rec.spans();
//! assert_eq!(spans.len(), 2);
//! let sweep = spans.iter().find(|s| s.name == "sweep").unwrap();
//! let phase = spans.iter().find(|s| s.name == "calibrate").unwrap();
//! assert_eq!(phase.parent, Some(sweep.id));
//! assert_eq!(sweep.attrs[0], ("family".to_string(), "toy".to_string()));
//! ```
//!
//! ## Reading a histogram back
//!
//! ```
//! use std::sync::Arc;
//!
//! let rec = Arc::new(obs::TraceRecorder::new());
//! obs::install(rec.clone());
//! obs::observe(obs::Hist::EvalLatency, 3e-6); // 3 microseconds
//! obs::observe(obs::Hist::EvalLatency, 0.5); // half a second
//! obs::uninstall();
//!
//! let h = rec.histogram(obs::Hist::EvalLatency);
//! assert_eq!(h.count, 2);
//! assert!((h.sum_secs - 0.500003).abs() < 1e-9);
//! // Each observation lands in the first bucket whose upper bound
//! // (1 µs · 2^i) is above it.
//! assert_eq!(h.count_at_or_below(4e-6), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod span;
pub mod trace;

pub use metrics::{Counter, Hist, HistogramSnapshot, BUCKET_COUNT};
pub use span::SpanGuard;
pub use trace::{SpanRecord, TraceRecorder};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Identifier of a recorded span, unique within one [`Recorder`]
/// installation. `Recorder::span_start` allocates them starting at 1.
pub type SpanId = u64;

/// Sink for spans, counters, and histogram observations.
///
/// Implementations must be thread-safe: the work-stealing pool calls
/// into the recorder from every worker thread concurrently. The
/// workspace ships one real implementation, [`TraceRecorder`]; the
/// default (nothing installed) is a no-op.
pub trait Recorder: Send + Sync {
    /// Open a span and return its id. `parent` is `None` for a root
    /// span. `attrs` are key-value annotations rendered into the trace.
    fn span_start(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        attrs: &[(&'static str, String)],
    ) -> SpanId;

    /// Close a previously started span.
    fn span_end(&self, id: SpanId);

    /// Add `delta` to a counter.
    fn add(&self, counter: Counter, delta: u64);

    /// Record one observation (in seconds) into a histogram.
    fn observe(&self, hist: Hist, seconds: f64);
}

/// Fast-path gate: `true` only while a recorder is installed. A single
/// relaxed load — this is the entire cost instrumentation pays when
/// tracing is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder, if any. Guarded by a lock only on the slow
/// path (install/uninstall and enabled call sites); disabled call
/// sites never touch it.
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Install `recorder` as the process-global sink, enabling all
/// instrumentation. Replaces any previously installed recorder.
pub fn install(recorder: Arc<dyn Recorder>) {
    *RECORDER.write().unwrap() = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the global recorder, returning instrumentation to its
/// no-op (near-zero-cost) state.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *RECORDER.write().unwrap() = None;
}

/// Whether a recorder is currently installed. Call sites use this to
/// skip building attributes or reading clocks when tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` against the installed recorder, if any.
#[inline]
fn with<R>(f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
    let guard = RECORDER.read().unwrap();
    guard.as_deref().map(f)
}

/// Add `delta` to `counter` on the installed recorder. No-op (one
/// relaxed atomic load) when tracing is disabled.
#[inline]
pub fn counter(counter: Counter, delta: u64) {
    if enabled() {
        with(|r| r.add(counter, delta));
    }
}

/// Record one observation (in seconds) into `hist` on the installed
/// recorder. No-op when tracing is disabled.
#[inline]
pub fn observe(hist: Hist, seconds: f64) {
    if enabled() {
        with(|r| r.observe(hist, seconds));
    }
}

#[doc(hidden)]
pub fn __start_span(
    name: &'static str,
    parent: Option<SpanId>,
    attrs: &[(&'static str, String)],
) -> Option<SpanId> {
    with(|r| r.span_start(name, parent, attrs))
}

#[doc(hidden)]
pub fn __end_span(id: SpanId) {
    with(|r| r.span_end(id));
}

/// Open a hierarchical span that closes when the returned
/// [`SpanGuard`] drops. The span nests under the innermost span still
/// open on the current thread; use [`SpanGuard::enter_under`] to
/// parent across threads instead.
///
/// Attribute values are rendered with `ToString` only while a
/// recorder is installed — a disabled `span!` does not allocate.
///
/// ```
/// let _span = obs::span!("calibrate", version = "wf-v3", restarts = 5);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let attrs = if $crate::enabled() {
            vec![$((stringify!($key), ::std::string::ToString::to_string(&$value))),+]
        } else {
            ::std::vec::Vec::new()
        };
        $crate::SpanGuard::enter($name, attrs)
    }};
}

/// Print one structured diagnostic line to stderr: `prog: message`.
///
/// The workspace output convention (see DESIGN.md "Observability"):
/// result tables go to **stdout**, human diagnostics go to **stderr**
/// through this macro, and machine-readable data goes to the
/// `--trace` JSONL file. The prefix is the binary's basename so
/// interleaved pipeline output stays attributable.
#[macro_export]
macro_rules! diag {
    ($($arg:tt)*) => {
        $crate::diag_line(::std::format_args!($($arg)*))
    };
}

/// Implementation of [`diag!`]: writes `prog: args` to stderr.
pub fn diag_line(args: std::fmt::Arguments<'_>) {
    eprintln!("{}: {args}", prog_name());
}

/// Basename of the running binary, used as the [`diag!`] prefix.
pub fn prog_name() -> &'static str {
    use std::sync::OnceLock;
    static NAME: OnceLock<String> = OnceLock::new();
    NAME.get_or_init(|| {
        std::env::args()
            .next()
            .as_deref()
            .map(std::path::Path::new)
            .and_then(|p| p.file_stem())
            .and_then(|s| s.to_str())
            .unwrap_or("lodcal")
            .to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that install the process-global recorder.
    static GLOBAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_instrumentation_is_inert() {
        let _lock = GLOBAL.lock().unwrap();
        uninstall();
        assert!(!enabled());
        counter(Counter::KernelEvents, 3);
        observe(Hist::EvalLatency, 0.1);
        let guard = span!("orphan", note = "ignored");
        assert_eq!(guard.id(), None);
    }

    #[test]
    fn install_routes_counters_and_uninstall_stops_them() {
        let _lock = GLOBAL.lock().unwrap();
        let rec = Arc::new(TraceRecorder::new());
        install(rec.clone());
        counter(Counter::EvalCacheHits, 2);
        counter(Counter::EvalCacheHits, 3);
        uninstall();
        counter(Counter::EvalCacheHits, 100);
        assert_eq!(rec.counter_value(Counter::EvalCacheHits), 5);
    }

    #[test]
    fn spans_nest_per_thread_and_close_in_order() {
        let _lock = GLOBAL.lock().unwrap();
        let rec = Arc::new(TraceRecorder::new());
        install(rec.clone());
        {
            let outer = span!("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span!("inner");
                assert_eq!(rec.open_parent_of(inner.id().unwrap()), Some(outer_id));
            }
            let sibling = span!("sibling");
            assert_eq!(rec.open_parent_of(sibling.id().unwrap()), Some(outer_id));
        }
        uninstall();
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        for name in ["inner", "sibling"] {
            let child = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(child.parent, Some(outer.id));
            assert!(child.start_ns >= outer.start_ns);
            assert!(child.end_ns <= outer.end_ns);
        }
    }

    #[test]
    fn explicit_parenting_crosses_threads() {
        let _lock = GLOBAL.lock().unwrap();
        let rec = Arc::new(TraceRecorder::new());
        install(rec.clone());
        let root = span!("root");
        let root_id = root.id();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _child =
                        SpanGuard::enter_under("worker", root_id, vec![("idx", i.to_string())]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(root);
        uninstall();
        let spans = rec.spans();
        let root_id = root_id.unwrap();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|s| s.parent == Some(root_id)));
        // Spawned threads get distinct trace thread ids.
        let threads: std::collections::HashSet<u64> = workers.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 4);
    }
}
