//! Typed metric names and the fixed-bucket histogram layout.

/// Every counter the workspace records, as a closed enum so trace
/// consumers can rely on the name set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Discrete events processed by `dessim::Engine::step`.
    KernelEvents,
    /// Predicted-completion heap pushes beyond each activity's first
    /// (rate changes and phase transitions re-insert stale entries).
    KernelHeapReinserts,
    /// Incremental max-min re-solves: one per touched link component
    /// or disk re-share in `dessim`'s sharing workspace.
    KernelSharingResolves,
    /// Total links included in committed frontier re-solves; together
    /// with `KernelSharingResolves` this gives the mean frontier size.
    KernelFrontierLinks,
    /// Peak bytes allocated to `dessim`'s shared route arena.
    KernelArenaBytes,
    /// Evaluator memoization hits (loss served without simulating).
    EvalCacheHits,
    /// Evaluator memoization misses (full simulation performed).
    EvalCacheMisses,
    /// Objective invocations that panicked and were isolated/quarantined
    /// by the evaluator instead of aborting the calibration.
    EvalPanics,
    /// Objective invocations that returned a non-finite loss and were
    /// quarantined.
    EvalNonfinite,
    /// Successful steals from another worker's deque in the
    /// work-stealing pool.
    PoolSteals,
    /// Times a pool worker parked (timed wait) because no work was
    /// available anywhere.
    PoolParks,
    /// Transient ledger write errors that were retried (with backoff)
    /// before succeeding or giving up.
    LedgerRetries,
    /// Evaluations replayed from the persistent on-disk loss cache
    /// (budget consumed, simulation skipped).
    DiskCacheHits,
    /// Evaluations that consulted the on-disk loss cache and missed
    /// (full simulation performed; only counted when a cache is active).
    DiskCacheMisses,
    /// Ledger shards reduced into a merged sweep ledger
    /// (one per shard per merge).
    ShardMerges,
    /// Jobs accepted by the calibd daemon (admission passed).
    JobsAccepted,
    /// Jobs enqueued behind the daemon's fair scheduler (decremented
    /// implicitly: queued = accepted − active − finished).
    JobsQueued,
    /// Jobs promoted from the queue to active execution.
    JobsActive,
}

impl Counter {
    /// All counters, in trace-emission order.
    pub const ALL: [Counter; 18] = [
        Counter::KernelEvents,
        Counter::KernelHeapReinserts,
        Counter::KernelSharingResolves,
        Counter::KernelFrontierLinks,
        Counter::KernelArenaBytes,
        Counter::EvalCacheHits,
        Counter::EvalCacheMisses,
        Counter::EvalPanics,
        Counter::EvalNonfinite,
        Counter::PoolSteals,
        Counter::PoolParks,
        Counter::LedgerRetries,
        Counter::DiskCacheHits,
        Counter::DiskCacheMisses,
        Counter::ShardMerges,
        Counter::JobsAccepted,
        Counter::JobsQueued,
        Counter::JobsActive,
    ];

    /// Stable snake_case name used in the JSONL trace.
    pub fn name(self) -> &'static str {
        match self {
            Counter::KernelEvents => "kernel_events",
            Counter::KernelHeapReinserts => "kernel_heap_reinserts",
            Counter::KernelSharingResolves => "kernel_sharing_resolves",
            Counter::KernelFrontierLinks => "kernel_frontier_links",
            Counter::KernelArenaBytes => "kernel_arena_bytes",
            Counter::EvalCacheHits => "eval_cache_hits",
            Counter::EvalCacheMisses => "eval_cache_misses",
            Counter::EvalPanics => "eval_panics",
            Counter::EvalNonfinite => "eval_nonfinite",
            Counter::PoolSteals => "pool_steals",
            Counter::PoolParks => "pool_parks",
            Counter::LedgerRetries => "ledger_retries",
            Counter::DiskCacheHits => "disk_cache_hits",
            Counter::DiskCacheMisses => "disk_cache_misses",
            Counter::ShardMerges => "shard_merges",
            Counter::JobsAccepted => "calibd_jobs_accepted",
            Counter::JobsQueued => "calibd_jobs_queued",
            Counter::JobsActive => "calibd_jobs_active",
        }
    }

    /// Index into per-recorder counter storage.
    pub(crate) fn index(self) -> usize {
        Counter::ALL.iter().position(|&c| c == self).unwrap()
    }
}

/// Every histogram the workspace records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Wall-clock seconds per objective evaluation (one calibration
    /// point simulated across all its scenarios).
    EvalLatency,
}

impl Hist {
    /// All histograms, in trace-emission order.
    pub const ALL: [Hist; 1] = [Hist::EvalLatency];

    /// Stable snake_case name used in the JSONL trace.
    pub fn name(self) -> &'static str {
        match self {
            Hist::EvalLatency => "eval_latency_secs",
        }
    }

    /// Index into per-recorder histogram storage.
    pub(crate) fn index(self) -> usize {
        Hist::ALL.iter().position(|&h| h == self).unwrap()
    }
}

/// Number of finite histogram buckets. Bucket `i` counts observations
/// in `(bound(i-1), bound(i)]` seconds where `bound(i) = 1 µs · 2^i`,
/// so the finite range spans 1 µs to ~537 s; one extra overflow
/// bucket counts everything larger.
pub const BUCKET_COUNT: usize = 30;

/// Upper bound (inclusive, in seconds) of finite bucket `i`.
pub fn bucket_bound(i: usize) -> f64 {
    debug_assert!(i < BUCKET_COUNT);
    1e-6 * (1u64 << i) as f64
}

/// Index of the bucket an observation of `seconds` falls into
/// (`BUCKET_COUNT` = the overflow bucket).
pub(crate) fn bucket_index(seconds: f64) -> usize {
    // NaN and negative observations land in the first bucket rather
    // than poisoning the histogram.
    (0..BUCKET_COUNT)
        .find(|&i| seconds <= bucket_bound(i))
        .unwrap_or(if seconds.is_nan() { 0 } else { BUCKET_COUNT })
}

/// Point-in-time copy of one histogram, read back from a
/// [`crate::TraceRecorder`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; `counts[BUCKET_COUNT]` is the
    /// overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values, in seconds.
    pub sum_secs: f64,
}

impl HistogramSnapshot {
    /// Observations in finite buckets whose upper bound is at most
    /// `seconds` — a coarse CDF read-back for tests and reports.
    pub fn count_at_or_below(&self, seconds: f64) -> u64 {
        (0..BUCKET_COUNT)
            .filter(|&i| bucket_bound(i) <= seconds)
            .map(|i| self.counts[i])
            .sum()
    }

    /// Mean observation in seconds, or `None` with no observations.
    pub fn mean_secs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_secs / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_log_spaced_from_one_microsecond() {
        assert_eq!(bucket_bound(0), 1e-6);
        for i in 1..BUCKET_COUNT {
            assert!((bucket_bound(i) / bucket_bound(i - 1) - 2.0).abs() < 1e-12);
        }
        // The finite range covers roughly nine decades: 1 µs .. ~537 s.
        assert!(bucket_bound(BUCKET_COUNT - 1) > 500.0);
    }

    #[test]
    fn boundary_observations_land_in_the_lower_bucket() {
        // Upper bounds are inclusive: exactly 1 µs is bucket 0,
        // the next representable value above it is bucket 1.
        assert_eq!(bucket_index(1e-6), 0);
        assert_eq!(bucket_index(1e-6_f64.next_up()), 1);
        assert_eq!(bucket_index(2e-6), 1);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
    }

    #[test]
    fn oversized_observations_overflow() {
        assert_eq!(
            bucket_index(bucket_bound(BUCKET_COUNT - 1)),
            BUCKET_COUNT - 1
        );
        assert_eq!(bucket_index(1e9), BUCKET_COUNT);
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT);
    }

    #[test]
    fn counter_and_hist_names_are_unique_and_indexed() {
        let names: std::collections::HashSet<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::ALL.len());
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }
}
