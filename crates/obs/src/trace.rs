//! The in-memory trace recorder and its versioned JSONL serialization.
//!
//! # Trace schema (version 1)
//!
//! A trace file is JSON Lines: one JSON object per line, UTF-8, no
//! framing. The first line is always the meta header; every other
//! line carries an `"event"` discriminant:
//!
//! ```json
//! {"schema":"lodcal-trace","version":1}
//! {"event":"span","id":1,"parent":null,"name":"sweep","thread":0,"start_us":0,"dur_us":5120,"attrs":{"family":"toy"}}
//! {"event":"counter","name":"kernel_events","value":184320}
//! {"event":"histogram","name":"eval_latency_secs","count":12,"sum_secs":0.034,"bounds_secs":[...],"counts":[...]}
//! ```
//!
//! - **span** — `id` is unique per trace; `parent` is `null` for
//!   roots; `thread` is a small per-trace thread index (0 = first
//!   thread seen); `start_us`/`dur_us` are microseconds on the
//!   recorder's monotonic clock, relative to recorder creation. A
//!   span still open at serialization time carries `"open":true` and
//!   a duration measured up to the moment of serialization.
//! - **counter** — every [`Counter`] is emitted, including zeros.
//! - **histogram** — `bounds_secs` lists the inclusive upper bound of
//!   each finite bucket; `counts` has one extra trailing entry, the
//!   overflow bucket (see [`crate::BUCKET_COUNT`]).
//!
//! All times are *relative* monotonic readings: traces contain no
//! absolute wall-clock values, matching the ledger convention that
//! wall-clock data is observability-only and never part of a digest.
//! Consumers must ignore unknown fields and unknown `event` values;
//! `version` is bumped on any breaking change.

use crate::metrics::{bucket_bound, bucket_index, Counter, Hist, HistogramSnapshot, BUCKET_COUNT};
use crate::{Recorder, SpanId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Value of the `schema` field in a trace's meta line.
pub const SCHEMA_NAME: &str = "lodcal-trace";

/// Value of the `version` field in a trace's meta line. Bumped on any
/// breaking change to the line formats documented in [`self`](crate::trace).
pub const SCHEMA_VERSION: u64 = 1;

/// A completed span as read back from a [`TraceRecorder`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace-unique id (allocated from 1).
    pub id: SpanId,
    /// Parent span id, or `None` for a root span.
    pub parent: Option<SpanId>,
    /// Static span name (e.g. `"sweep"`, `"calibrate"`).
    pub name: &'static str,
    /// Per-trace thread index (0 = first thread that opened a span).
    pub thread: u64,
    /// Start offset in nanoseconds on the recorder's monotonic clock.
    pub start_ns: u64,
    /// End offset in nanoseconds on the recorder's monotonic clock.
    pub end_ns: u64,
    /// Key-value annotations from the [`crate::span!`] call site.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end_ns - self.start_ns) as f64 * 1e-9
    }
}

struct OpenSpan {
    parent: Option<SpanId>,
    name: &'static str,
    thread: u64,
    start_ns: u64,
    attrs: Vec<(String, String)>,
}

#[derive(Default)]
struct SpanTable {
    open: HashMap<SpanId, OpenSpan>,
    closed: Vec<SpanRecord>,
    threads: HashMap<std::thread::ThreadId, u64>,
}

struct HistState {
    counts: [AtomicU64; BUCKET_COUNT + 1],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl HistState {
    fn new() -> HistState {
        HistState {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }
}

/// A thread-safe [`Recorder`] that collects spans, counters, and
/// histograms in memory and serializes them as versioned JSONL (see
/// the [module docs](self) for the schema).
pub struct TraceRecorder {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<SpanTable>,
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [HistState; Hist::ALL.len()],
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// Create an empty recorder; its monotonic epoch (the zero point
    /// of all span offsets) is the moment of this call.
    pub fn new() -> TraceRecorder {
        TraceRecorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(SpanTable::default()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistState::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Completed spans, ordered by id (i.e. by start).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let table = self.spans.lock().unwrap();
        let mut out = table.closed.clone();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Parent of a currently *open* span — test/report helper.
    pub fn open_parent_of(&self, id: SpanId) -> Option<SpanId> {
        self.spans
            .lock()
            .unwrap()
            .open
            .get(&id)
            .and_then(|s| s.parent)
    }

    /// Current value of `counter`.
    pub fn counter_value(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Snapshot of `hist`.
    pub fn histogram(&self, hist: Hist) -> HistogramSnapshot {
        let state = &self.hists[hist.index()];
        HistogramSnapshot {
            counts: state
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: state.count.load(Ordering::Relaxed),
            sum_secs: f64::from_bits(state.sum_bits.load(Ordering::Relaxed)),
        }
    }

    /// Serialize the whole trace as JSONL (meta line first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"schema\":\"{SCHEMA_NAME}\",\"version\":{SCHEMA_VERSION}}}\n"
        ));
        let now = self.now_ns();
        {
            let table = self.spans.lock().unwrap();
            let mut lines: Vec<(SpanId, String)> = Vec::new();
            for s in &table.closed {
                lines.push((s.id, span_line(s, false)));
            }
            for (&id, o) in &table.open {
                let record = SpanRecord {
                    id,
                    parent: o.parent,
                    name: o.name,
                    thread: o.thread,
                    start_ns: o.start_ns,
                    end_ns: now.max(o.start_ns),
                    attrs: o.attrs.clone(),
                };
                lines.push((id, span_line(&record, true)));
            }
            lines.sort_by_key(|(id, _)| *id);
            for (_, line) in lines {
                out.push_str(&line);
                out.push('\n');
            }
        }
        for c in Counter::ALL {
            out.push_str(&format!(
                "{{\"event\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
                c.name(),
                self.counter_value(c)
            ));
        }
        for h in Hist::ALL {
            let snap = self.histogram(h);
            let bounds: Vec<String> = (0..BUCKET_COUNT)
                .map(|i| fmt_f64(bucket_bound(i)))
                .collect();
            let counts: Vec<String> = snap.counts.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "{{\"event\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum_secs\":{},\"bounds_secs\":[{}],\"counts\":[{}]}}\n",
                h.name(),
                snap.count,
                fmt_f64(snap.sum_secs),
                bounds.join(","),
                counts.join(","),
            ));
        }
        out
    }

    /// Write the serialized trace to `path`, creating parent
    /// directories as needed.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_jsonl())
    }
}

impl Recorder for TraceRecorder {
    fn span_start(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        attrs: &[(&'static str, String)],
    ) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let start_ns = self.now_ns();
        let mut table = self.spans.lock().unwrap();
        let next_thread = table.threads.len() as u64;
        let thread = *table
            .threads
            .entry(std::thread::current().id())
            .or_insert(next_thread);
        table.open.insert(
            id,
            OpenSpan {
                parent,
                name,
                thread,
                start_ns,
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            },
        );
        id
    }

    fn span_end(&self, id: SpanId) {
        let end_ns = self.now_ns();
        let mut table = self.spans.lock().unwrap();
        if let Some(open) = table.open.remove(&id) {
            table.closed.push(SpanRecord {
                id,
                parent: open.parent,
                name: open.name,
                thread: open.thread,
                start_ns: open.start_ns,
                end_ns: end_ns.max(open.start_ns),
                attrs: open.attrs,
            });
        }
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    fn observe(&self, hist: Hist, seconds: f64) {
        let state = &self.hists[hist.index()];
        state.counts[bucket_index(seconds)].fetch_add(1, Ordering::Relaxed);
        state.count.fetch_add(1, Ordering::Relaxed);
        let mut bits = state.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(bits) + seconds).to_bits();
            match state.sum_bits.compare_exchange_weak(
                bits,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => bits = actual,
            }
        }
    }
}

fn span_line(s: &SpanRecord, open: bool) -> String {
    let mut line = String::with_capacity(128);
    line.push_str(&format!(
        "{{\"event\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{}",
        s.id,
        s.parent.map_or("null".to_string(), |p| p.to_string()),
        json_escape(s.name),
        s.thread,
        s.start_ns / 1_000,
        (s.end_ns - s.start_ns) / 1_000,
    ));
    if open {
        line.push_str(",\"open\":true");
    }
    if !s.attrs.is_empty() {
        line.push_str(",\"attrs\":{");
        for (i, (k, v)) in s.attrs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// Render an `f64` as a JSON number token (`null` for non-finite
/// values, which JSON cannot represent).
fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    // Ensure the token re-parses as a float, not an integer.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Escape a string for inclusion inside JSON double quotes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_without_global_install() {
        let rec = TraceRecorder::new();
        let a = rec.span_start("a", None, &[("k", "v\"q".to_string())]);
        let b = rec.span_start("b", Some(a), &[]);
        rec.span_end(b);
        rec.span_end(a);
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].parent, Some(a));
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(spans[1].end_ns <= spans[0].end_ns);
    }

    #[test]
    fn jsonl_has_meta_line_and_escapes_strings() {
        let rec = TraceRecorder::new();
        let a = rec.span_start("a", None, &[("note", "say \"hi\"\n".to_string())]);
        rec.span_end(a);
        let open = rec.span_start("still-open", None, &[]);
        let _ = open;
        rec.add(Counter::PoolSteals, 4);
        rec.observe(Hist::EvalLatency, 0.25);
        let text = rec.to_jsonl();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"schema\":\"lodcal-trace\",\"version\":1}"
        );
        assert!(text.contains("\\\"hi\\\"\\n"));
        assert!(text.contains("\"open\":true"));
        assert!(text.contains("{\"event\":\"counter\",\"name\":\"pool_steals\",\"value\":4}"));
        assert!(text.contains("\"name\":\"eval_latency_secs\",\"count\":1,\"sum_secs\":0.25"));
        // One meta + two spans + all counters + all histograms.
        assert_eq!(
            text.lines().count(),
            1 + 2 + Counter::ALL.len() + Hist::ALL.len()
        );
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let rec = std::sync::Arc::new(TraceRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        rec.add(Counter::KernelEvents, 1);
                        rec.observe(Hist::EvalLatency, 1e-3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counter_value(Counter::KernelEvents), 4000);
        let h = rec.histogram(Hist::EvalLatency);
        assert_eq!(h.count, 4000);
        assert!((h.sum_secs - 4.0).abs() < 1e-9);
        assert_eq!(h.counts[crate::metrics::bucket_index(1e-3)], 4000);
    }

    #[test]
    fn fmt_f64_round_trips_as_float_tokens() {
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
