//! RAII span guards with per-thread nesting.

use crate::SpanId;
use std::cell::RefCell;

thread_local! {
    /// Innermost-last stack of spans opened on this thread via
    /// [`SpanGuard::enter`]; the top is the implicit parent of the
    /// next same-thread span.
    static STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// An open span; dropping it closes the span on the installed
/// recorder. Created by the [`crate::span!`] macro or, for explicit
/// cross-thread parenting, by [`SpanGuard::enter_under`].
#[must_use = "a span measures the scope it is alive for; bind it to a variable"]
pub struct SpanGuard {
    /// `None` when no recorder was installed at entry (the guard is
    /// then fully inert, including on drop).
    id: Option<SpanId>,
    /// Whether this guard pushed onto the thread-local parent stack.
    on_stack: bool,
}

impl SpanGuard {
    /// Open a span nested under the innermost span currently open on
    /// this thread (or a root span if none is).
    pub fn enter(name: &'static str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                id: None,
                on_stack: false,
            };
        }
        let parent = STACK.with(|s| s.borrow().last().copied());
        let id = crate::__start_span(name, parent, &attrs);
        if let Some(id) = id {
            STACK.with(|s| s.borrow_mut().push(id));
        }
        SpanGuard {
            id,
            on_stack: id.is_some(),
        }
    }

    /// Open a span under an explicit parent, ignoring this thread's
    /// span stack. This is how work fanned out on the pool stays
    /// attached to the phase span opened on the driving thread:
    /// capture `phase.id()` before the parallel closure and pass it
    /// here. The new span still becomes the implicit parent for
    /// further same-thread nesting.
    pub fn enter_under(
        name: &'static str,
        parent: Option<SpanId>,
        attrs: Vec<(&'static str, String)>,
    ) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                id: None,
                on_stack: false,
            };
        }
        let id = crate::__start_span(name, parent, &attrs);
        if let Some(id) = id {
            STACK.with(|s| s.borrow_mut().push(id));
        }
        SpanGuard {
            id,
            on_stack: id.is_some(),
        }
    }

    /// The recorded span id, or `None` when tracing was disabled at
    /// entry. Pass this to [`SpanGuard::enter_under`] on other
    /// threads to parent their spans here.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            if self.on_stack {
                STACK.with(|s| {
                    let mut stack = s.borrow_mut();
                    // Guards drop in reverse entry order in correct
                    // code; tolerate out-of-order drops by removing
                    // this id wherever it sits.
                    if stack.last() == Some(&id) {
                        stack.pop();
                    } else if let Some(pos) = stack.iter().position(|&x| x == id) {
                        stack.remove(pos);
                    }
                });
            }
            crate::__end_span(id);
        }
    }
}
