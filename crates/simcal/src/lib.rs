//! # simcal — automated simulation calibration
//!
//! The paper's primary contribution: a general framework for automatically
//! calibrating simulators of parallel and distributed computing systems
//! against ground-truth execution data, so that a simulator's *intrinsic*
//! accuracy can be evaluated soundly and levels of detail compared
//! rationally.
//!
//! The moving parts mirror the paper's methodology (§3) and
//! implementation (§4):
//!
//! - [`param`] — user-specified parameter ranges (continuous, `2^x`
//!   exponential, integer) forming a [`param::ParameterSpace`];
//! - [`objective`] — the [`objective::Simulator`] trait (the paper's
//!   `Simulator` class with its overridable `run()`) and the
//!   [`objective::Objective`] a calibration minimizes;
//! - [`loss`] — the loss-function families of both case studies
//!   (makespan/task-error compositions L1–L6; explained-variance
//!   compositions L1–L4);
//! - [`algorithms`] — GRID, RAND, GRAD, and BO with four surrogate
//!   regressors ([`surrogate`]);
//! - [`budget`] — wall-clock and evaluation-count budgets with parallel
//!   batch evaluation and convergence traces;
//! - [`cache`] — the persistent, content-addressed on-disk loss cache
//!   behind the evaluator's memo map (enabled per objective via
//!   [`objective::Objective::cache_fingerprint`] plus [`cache::install`]
//!   or `CALIB_CACHE`);
//! - [`fault`] — panic isolation ([`fault::guard`]), the typed
//!   [`fault::EvalFailure`] quarantine taxonomy, and the deterministic
//!   [`fault::FaultPlan`] injection harness behind the chaos tests;
//! - [`fidelity`] — deterministic scenario subsampling
//!   ([`fidelity::SubsampledObjective`]) for the cheap rungs of
//!   multi-fidelity (successive-halving) sweeps;
//! - [`quota`] — per-tenant evaluation-budget accounting
//!   ([`quota::QuotaBook`]) for multi-tenant calibration services;
//! - [`calibrate`] — the top-level [`calibrate::Calibrator`] driver;
//! - [`synthetic`] — synthetic benchmarking and the calibration-error
//!   metric used to select the loss/algorithm pair (Tables 3 and 5).
//!
//! ## Example: calibrate a toy simulator
//!
//! ```
//! use simcal::prelude::*;
//!
//! // A "simulator" whose scenario is a ground-truth value and whose output
//! // is the relative error of the calibrated parameter against it.
//! struct Toy;
//! impl Simulator for Toy {
//!     type Scenario = f64;
//!     type Output = ScenarioError;
//!     fn run(&self, truth: &f64, calib: &Calibration) -> ScenarioError {
//!         ScenarioError::scalar_only(relative_error(*truth, calib.values[0]))
//!     }
//! }
//!
//! let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 100.0 });
//! let dataset = vec![42.0, 42.0];
//! let objective = SimulationObjective::new(
//!     &Toy, &dataset,
//!     StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
//!     space,
//! );
//! let result = Calibrator::bo_gp(Budget::Evaluations(150), 1).calibrate(&objective);
//! assert!((result.calibration.values[0] - 42.0).abs() < 5.0);
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod budget;
pub mod cache;
pub mod calibrate;
pub mod fault;
pub mod fidelity;
pub mod loss;
pub mod objective;
pub mod param;
pub mod quota;
pub mod surrogate;
pub mod synthetic;

/// One-stop imports for framework users.
pub mod prelude {
    pub use crate::algorithms::{
        AlgorithmKind, BayesianOpt, GradientDescent, GridSearch, RandomSearch, SearchAlgorithm,
    };
    pub use crate::budget::{Budget, Evaluator, TracePoint};
    pub use crate::cache::{CacheFingerprint, CacheRecord, CachedOutcome, DiskCache};
    pub use crate::calibrate::{CalibrationFailed, CalibrationResult, Calibrator};
    pub use crate::fault::{EvalFailure, FaultKind, FaultPlan};
    pub use crate::fidelity::{subset_indices, subset_tag, Fidelity, SubsampledObjective};
    pub use crate::loss::{
        relative_error, Agg, ElementMix, Loss, MatrixLoss, ScenarioError, StructuredLoss,
    };
    pub use crate::objective::{FnObjective, Objective, SimulationObjective, Simulator};
    pub use crate::param::{Calibration, ParamDef, ParamKind, ParameterSpace};
    pub use crate::quota::{QuotaBook, QuotaExceeded};
    pub use crate::surrogate::{Surrogate, SurrogateKind};
    pub use crate::synthetic::{
        best_pair, calibration_error, midpoint_reference, synthetic_benchmark, SyntheticCell,
    };
}
