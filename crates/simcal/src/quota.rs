//! Per-tenant evaluation-budget quotas for multi-tenant calibration
//! services.
//!
//! A [`QuotaBook`] tracks how many objective evaluations each tenant has
//! been granted. Admission control charges a job's *planned* evaluation
//! count up front (the plan is deterministic, so the count is exact for
//! [`crate::budget::Budget::Evaluations`] budgets); a rejected or
//! cancelled job refunds its charge. Resuming a checkpointed job must
//! NOT be re-charged — replayed checkpoints consume no budget — so the
//! caller only charges genuinely new admissions.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// A tenant's admission was refused: the requested evaluations exceed
/// what remains of its quota.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuotaExceeded {
    /// The tenant that asked.
    pub tenant: String,
    /// Evaluations the admission would have charged.
    pub requested: usize,
    /// Evaluations still available to the tenant.
    pub remaining: usize,
}

impl fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tenant {} quota exceeded: requested {} evaluations, {} remaining",
            self.tenant, self.requested, self.remaining
        )
    }
}

impl std::error::Error for QuotaExceeded {}

struct Tenant {
    limit: usize,
    charged: usize,
}

/// Thread-safe per-tenant evaluation accounting. Tenants not explicitly
/// configured get the default limit on first contact.
pub struct QuotaBook {
    default_limit: usize,
    tenants: Mutex<HashMap<String, Tenant>>,
}

impl QuotaBook {
    /// A book whose unconfigured tenants may charge up to
    /// `default_limit` evaluations each.
    pub fn new(default_limit: usize) -> Self {
        Self {
            default_limit,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Set (or overwrite) one tenant's limit. Already-charged
    /// evaluations are kept, so lowering a limit below the charge simply
    /// blocks further admissions.
    pub fn set_limit(&self, tenant: &str, limit: usize) {
        let mut tenants = self.tenants.lock();
        tenants
            .entry(tenant.to_string())
            .and_modify(|t| t.limit = limit)
            .or_insert(Tenant { limit, charged: 0 });
    }

    /// Evaluations the tenant has charged so far.
    pub fn charged(&self, tenant: &str) -> usize {
        self.tenants.lock().get(tenant).map_or(0, |t| t.charged)
    }

    /// Evaluations the tenant can still charge.
    pub fn remaining(&self, tenant: &str) -> usize {
        let tenants = self.tenants.lock();
        match tenants.get(tenant) {
            Some(t) => t.limit.saturating_sub(t.charged),
            None => self.default_limit,
        }
    }

    /// Charge `evaluations` against the tenant's quota, or refuse with a
    /// typed [`QuotaExceeded`] leaving the book unchanged.
    pub fn charge(&self, tenant: &str, evaluations: usize) -> Result<(), QuotaExceeded> {
        let mut tenants = self.tenants.lock();
        let t = tenants.entry(tenant.to_string()).or_insert(Tenant {
            limit: self.default_limit,
            charged: 0,
        });
        let remaining = t.limit.saturating_sub(t.charged);
        if evaluations > remaining {
            return Err(QuotaExceeded {
                tenant: tenant.to_string(),
                requested: evaluations,
                remaining,
            });
        }
        t.charged += evaluations;
        Ok(())
    }

    /// Return `evaluations` to the tenant (a cancelled or failed job
    /// gives its admission charge back). Saturates at zero.
    pub fn refund(&self, tenant: &str, evaluations: usize) {
        let mut tenants = self.tenants.lock();
        if let Some(t) = tenants.get_mut(tenant) {
            t.charged = t.charged.saturating_sub(evaluations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_hit_the_limit() {
        let book = QuotaBook::new(100);
        assert_eq!(book.remaining("a"), 100);
        book.charge("a", 60).unwrap();
        assert_eq!(book.remaining("a"), 40);
        assert_eq!(book.charged("a"), 60);
        let err = book.charge("a", 41).unwrap_err();
        assert_eq!(
            err,
            QuotaExceeded {
                tenant: "a".into(),
                requested: 41,
                remaining: 40,
            }
        );
        // The refused charge left the book unchanged.
        assert_eq!(book.remaining("a"), 40);
        book.charge("a", 40).unwrap();
        assert_eq!(book.remaining("a"), 0);
    }

    #[test]
    fn tenants_are_isolated_and_configurable() {
        let book = QuotaBook::new(10);
        book.set_limit("big", 1000);
        book.charge("big", 500).unwrap();
        assert_eq!(book.remaining("big"), 500);
        // The default tenant is unaffected by big's configuration.
        assert_eq!(book.remaining("small"), 10);
        assert!(book.charge("small", 11).is_err());
    }

    #[test]
    fn refunds_restore_capacity_and_saturate() {
        let book = QuotaBook::new(50);
        book.charge("t", 30).unwrap();
        book.refund("t", 10);
        assert_eq!(book.remaining("t"), 30);
        // Refunding more than was charged clamps at zero charge.
        book.refund("t", 1000);
        assert_eq!(book.remaining("t"), 50);
        // Refunding an unknown tenant is a no-op.
        book.refund("ghost", 5);
        assert_eq!(book.remaining("ghost"), 50);
    }

    #[test]
    fn lowering_a_limit_below_the_charge_blocks_without_panicking() {
        let book = QuotaBook::new(100);
        book.charge("t", 80).unwrap();
        book.set_limit("t", 50);
        assert_eq!(book.remaining("t"), 0);
        assert!(book.charge("t", 1).is_err());
        assert_eq!(book.charged("t"), 80);
    }

    #[test]
    fn quota_errors_render_actionably() {
        let err = QuotaExceeded {
            tenant: "acme".into(),
            requested: 7,
            remaining: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("acme"), "{msg}");
        assert!(msg.contains('7'), "{msg}");
        assert!(msg.contains('3'), "{msg}");
    }
}
