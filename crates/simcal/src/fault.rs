//! Failure isolation and deterministic fault injection.
//!
//! A multi-hour sweep must not lose every completed run because one
//! simulator version panics or returns a NaN loss. This module supplies
//! the two halves of that robustness contract:
//!
//! - [`guard`] runs a closure under [`std::panic::catch_unwind`],
//!   converting a panic into an `Err(message)` while suppressing the
//!   default panic hook's backtrace noise for the guarded region. The
//!   [`crate::budget::Evaluator`] wraps every objective invocation in it
//!   and turns the outcome into a typed [`EvalFailure`].
//! - [`FaultPlan`] is a deterministic fault-injection harness for chaos
//!   tests: faults are keyed on the evaluator's seed and the
//!   budget-consuming evaluation index, both of which are deterministic
//!   under `Budget::Evaluations` regardless of thread count, so an
//!   injected-fault run is exactly reproducible.
//!
//! A plan can be installed programmatically ([`install`]/[`uninstall`])
//! or via the `CALIB_FAULTS` environment variable (see
//! [`FaultPlan::parse`] for the syntax). Evaluators snapshot the
//! installed plan at construction time.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once, OnceLock, RwLock};

/// Why an evaluation produced no usable loss.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalFailure {
    /// The objective panicked; the payload's message is preserved.
    Panic {
        /// The panic payload rendered as a string.
        message: String,
    },
    /// The objective returned a non-finite loss (NaN or ±inf).
    NonFinite {
        /// The offending loss value.
        loss: f64,
    },
    /// The budget was exhausted before the evaluation could run.
    BudgetExhausted,
}

impl std::fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalFailure::Panic { message } => write!(f, "objective panicked: {message}"),
            EvalFailure::NonFinite { loss } => {
                write!(f, "objective returned non-finite loss {loss}")
            }
            EvalFailure::BudgetExhausted => write!(f, "budget exhausted"),
        }
    }
}

thread_local! {
    /// Depth of [`guard`] nesting on this thread; the quiet panic hook
    /// stays silent while it is non-zero.
    static GUARD_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Install (once, process-wide) a panic hook that suppresses output for
/// panics caught by [`guard`] on the panicking thread, delegating to the
/// previous hook everywhere else.
fn ensure_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if GUARD_DEPTH.with(|d| d.get()) == 0 {
                previous(info);
            }
        }));
    });
}

/// Render a caught panic payload as a message string.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, converting a panic into `Err(message)`.
///
/// The default panic hook is silenced for the guarded region (on the
/// panicking thread), so an isolated failure does not spray a backtrace
/// into the middle of a sweep's diagnostics. Note that a closure which
/// itself fans work into the thread pool panics *on a worker thread*;
/// the vendored pool propagates the payload back to the caller (where
/// this guard catches it), but the hook suppression only covers panics
/// raised on the guarded thread itself.
pub fn guard<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    ensure_quiet_hook();
    GUARD_DEPTH.with(|d| d.set(d.get() + 1));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    GUARD_DEPTH.with(|d| d.set(d.get() - 1));
    outcome.map_err(payload_message)
}

/// What an injected fault does to the targeted evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the guarded objective invocation.
    Panic,
    /// Return `f64::NAN` as the loss.
    Nan,
}

/// One injected fault: fires on evaluation `eval` (0-based,
/// budget-consuming evaluations only) of every evaluator whose seed
/// matches (`seed: None` matches any evaluator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens when the fault fires.
    pub kind: FaultKind,
    /// 0-based budget-consuming evaluation index the fault targets.
    pub eval: usize,
    /// Restrict the fault to evaluators constructed with this seed.
    pub seed: Option<u64>,
}

/// A deterministic set of injected faults.
///
/// In a `lodsel` sweep every (unit, restart) run calibrates under a
/// distinct derived seed, so a seed-scoped spec targets exactly one run
/// of the sweep; the evaluation index then pins the fault to one
/// specific objective invocation within that run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault that fires for any evaluator seed.
    pub fn with_fault(mut self, kind: FaultKind, eval: usize) -> Self {
        self.specs.push(FaultSpec {
            kind,
            eval,
            seed: None,
        });
        self
    }

    /// Add a fault restricted to evaluators constructed with `seed`.
    pub fn with_seeded_fault(mut self, kind: FaultKind, eval: usize, seed: u64) -> Self {
        self.specs.push(FaultSpec {
            kind,
            eval,
            seed: Some(seed),
        });
        self
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The fault (if any) to inject into evaluation `eval` of an
    /// evaluator constructed with `seed`. First matching spec wins.
    pub fn fault_at(&self, seed: u64, eval: usize) -> Option<FaultKind> {
        self.specs
            .iter()
            .find(|s| s.eval == eval && s.seed.is_none_or(|w| w == seed))
            .map(|s| s.kind)
    }

    /// Parse the `CALIB_FAULTS` syntax: `;`-separated specs of the form
    /// `KIND@EVAL` or `KIND@EVAL@SEED`, where `KIND` is `panic` or
    /// `nan`. Examples: `panic@3`, `nan@0@12345`,
    /// `panic@2;nan@7@99`. Whitespace around specs is ignored; an empty
    /// string parses to an empty plan.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for raw in text.split(';') {
            let spec = raw.trim();
            if spec.is_empty() {
                continue;
            }
            let parts: Vec<&str> = spec.split('@').collect();
            if parts.len() < 2 || parts.len() > 3 {
                return Err(format!(
                    "fault spec `{spec}`: expected KIND@EVAL or KIND@EVAL@SEED"
                ));
            }
            let kind = match parts[0] {
                "panic" => FaultKind::Panic,
                "nan" => FaultKind::Nan,
                other => return Err(format!("fault spec `{spec}`: unknown kind `{other}`")),
            };
            let eval: usize = parts[1]
                .parse()
                .map_err(|_| format!("fault spec `{spec}`: bad evaluation index `{}`", parts[1]))?;
            let seed = match parts.get(2) {
                Some(s) => Some(
                    s.parse::<u64>()
                        .map_err(|_| format!("fault spec `{spec}`: bad seed `{s}`"))?,
                ),
                None => None,
            };
            plan.specs.push(FaultSpec { kind, eval, seed });
        }
        Ok(plan)
    }
}

/// The explicitly installed plan, if any. Overrides the environment.
static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// The `CALIB_FAULTS` environment plan, parsed once per process.
static ENV_PLAN: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();

/// Install `plan` process-globally; evaluators constructed afterwards
/// snapshot it. Replaces any previously installed plan and overrides
/// `CALIB_FAULTS`. Intended for chaos tests, which must serialize on a
/// shared lock when running in one process.
pub fn install(plan: FaultPlan) {
    *PLAN.write().unwrap() = Some(Arc::new(plan));
}

/// Remove any programmatically installed plan (the `CALIB_FAULTS`
/// environment plan, if set, becomes visible again).
pub fn uninstall() {
    *PLAN.write().unwrap() = None;
}

/// The currently active plan: the installed one, else the `CALIB_FAULTS`
/// environment plan, else `None`. An unparsable environment value is
/// diagnosed once and ignored.
pub fn current() -> Option<Arc<FaultPlan>> {
    if let Some(plan) = PLAN.read().unwrap().clone() {
        return Some(plan);
    }
    ENV_PLAN
        .get_or_init(|| {
            let text = std::env::var("CALIB_FAULTS").ok()?;
            match FaultPlan::parse(&text) {
                Ok(plan) if !plan.is_empty() => Some(Arc::new(plan)),
                Ok(_) => None,
                Err(e) => {
                    obs::diag!("ignoring CALIB_FAULTS: {e}");
                    None
                }
            }
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_passes_values_through() {
        assert_eq!(guard(|| 41 + 1), Ok(42));
    }

    #[test]
    fn guard_catches_str_and_string_panics() {
        assert_eq!(guard(|| panic!("boom")), Err::<(), _>("boom".to_string()));
        let msg = format!("loss exploded at {}", 3);
        assert_eq!(guard(|| panic!("{msg}")), Err::<(), _>(msg));
    }

    #[test]
    fn guard_nests() {
        let outer = guard(|| {
            let inner = guard(|| -> i32 { panic!("inner") });
            assert_eq!(inner, Err("inner".to_string()));
            7
        });
        assert_eq!(outer, Ok(7));
    }

    #[test]
    fn plan_parses_and_matches() {
        let plan = FaultPlan::parse("panic@3; nan@0@42").unwrap();
        assert_eq!(plan.fault_at(0, 3), Some(FaultKind::Panic));
        assert_eq!(plan.fault_at(99, 3), Some(FaultKind::Panic));
        assert_eq!(plan.fault_at(42, 0), Some(FaultKind::Nan));
        assert_eq!(plan.fault_at(41, 0), None);
        assert_eq!(plan.fault_at(42, 1), None);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn plan_rejects_malformed_specs() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("explode@3").is_err());
        assert!(FaultPlan::parse("panic@x").is_err());
        assert!(FaultPlan::parse("panic@1@y").is_err());
        assert!(FaultPlan::parse("panic@1@2@3").is_err());
    }

    #[test]
    fn failure_messages_are_readable() {
        let p = EvalFailure::Panic {
            message: "index out of bounds".into(),
        };
        assert!(p.to_string().contains("index out of bounds"));
        let n = EvalFailure::NonFinite { loss: f64::NAN };
        assert!(n.to_string().contains("non-finite"));
        assert_eq!(EvalFailure::BudgetExhausted.to_string(), "budget exhausted");
    }
}
