//! Calibration parameters, parameter spaces, and calibrations.
//!
//! Search algorithms operate in the **unit hypercube** `[0,1]^d`; a
//! [`ParameterSpace`] maps unit points to **natural-unit** values and back.
//! Three parameter kinds cover everything the paper's case studies need:
//!
//! - [`ParamKind::Continuous`] — uniform in `[lo, hi]` (latencies,
//!   overheads, bandwidth factors, change points);
//! - [`ParamKind::Exponential`] — `2^x` with `x` uniform in
//!   `[lo_exp, hi_exp]` (the paper's bandwidth/core-speed ranges, §5.3.1);
//! - [`ParamKind::Integer`] — integer-valued in `[lo, hi]` (maximum
//!   concurrent I/O operations at a disk).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The shape of one calibratable parameter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Uniform continuous in `[lo, hi]`.
    Continuous {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// `2^x` for `x` uniform in `[lo_exp, hi_exp]`: log-uniform over
    /// `[2^lo_exp, 2^hi_exp]`.
    Exponential {
        /// Lower bound of the exponent.
        lo_exp: f64,
        /// Upper bound of the exponent.
        hi_exp: f64,
    },
    /// Integers in `[lo, hi]`, both inclusive.
    Integer {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
}

impl ParamKind {
    /// Map a unit-interval coordinate to a natural-unit value.
    pub fn denormalize(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match *self {
            ParamKind::Continuous { lo, hi } => lo + u * (hi - lo),
            ParamKind::Exponential { lo_exp, hi_exp } => (lo_exp + u * (hi_exp - lo_exp)).exp2(),
            ParamKind::Integer { lo, hi } => {
                let span = (hi - lo) as f64;
                (lo as f64 + (u * (span + 1.0)).floor().min(span)).round()
            }
        }
    }

    /// Map a natural-unit value back to the unit interval (clamped).
    pub fn normalize(&self, v: f64) -> f64 {
        let u = match *self {
            ParamKind::Continuous { lo, hi } => {
                if hi > lo {
                    (v - lo) / (hi - lo)
                } else {
                    0.5
                }
            }
            ParamKind::Exponential { lo_exp, hi_exp } => {
                if hi_exp > lo_exp {
                    (v.max(f64::MIN_POSITIVE).log2() - lo_exp) / (hi_exp - lo_exp)
                } else {
                    0.5
                }
            }
            ParamKind::Integer { lo, hi } => {
                let span = (hi - lo) as f64;
                if span > 0.0 {
                    // Centre of the value's bucket, so denormalize(normalize(v)) == v.
                    ((v - lo as f64) + 0.5) / (span + 1.0)
                } else {
                    0.5
                }
            }
        };
        u.clamp(0.0, 1.0)
    }
}

/// A named parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    /// Human-readable identifier, unique within a space.
    pub name: String,
    /// Range and scale.
    pub kind: ParamKind,
}

/// An ordered set of named parameters: the domain of a calibration problem.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ParameterSpace {
    params: Vec<ParamDef>,
}

impl ParameterSpace {
    /// An empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: add a parameter and return `self`.
    ///
    /// # Panics
    /// Panics on a duplicate name or an empty/invalid range.
    pub fn with(mut self, name: &str, kind: ParamKind) -> Self {
        self.add(name, kind);
        self
    }

    /// Add a parameter.
    ///
    /// # Panics
    /// Panics on a duplicate name or an empty/invalid range.
    pub fn add(&mut self, name: &str, kind: ParamKind) {
        assert!(
            self.params.iter().all(|p| p.name != name),
            "duplicate parameter name {name:?}"
        );
        match kind {
            ParamKind::Continuous { lo, hi } => {
                assert!(
                    lo.is_finite() && hi.is_finite() && lo <= hi,
                    "invalid range for {name:?}"
                )
            }
            ParamKind::Exponential { lo_exp, hi_exp } => assert!(
                lo_exp.is_finite() && hi_exp.is_finite() && lo_exp <= hi_exp,
                "invalid exponent range for {name:?}"
            ),
            ParamKind::Integer { lo, hi } => assert!(lo <= hi, "invalid range for {name:?}"),
        }
        self.params.push(ParamDef {
            name: name.to_string(),
            kind,
        });
    }

    /// Number of parameters (the dimensionality of the search).
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameter definitions, in order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Index of the parameter named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Map a unit-hypercube point to a natural-unit [`Calibration`].
    ///
    /// # Panics
    /// Panics if `unit.len() != self.dim()`.
    pub fn denormalize(&self, unit: &[f64]) -> Calibration {
        assert_eq!(unit.len(), self.dim(), "dimension mismatch");
        Calibration {
            values: self
                .params
                .iter()
                .zip(unit)
                .map(|(p, &u)| p.kind.denormalize(u))
                .collect(),
        }
    }

    /// Map a natural-unit calibration to the unit hypercube.
    ///
    /// # Panics
    /// Panics if `calib.values.len() != self.dim()`.
    pub fn normalize(&self, calib: &Calibration) -> Vec<f64> {
        assert_eq!(calib.values.len(), self.dim(), "dimension mismatch");
        self.params
            .iter()
            .zip(&calib.values)
            .map(|(p, &v)| p.kind.normalize(v))
            .collect()
    }

    /// Sample a uniform point in the unit hypercube.
    pub fn sample_unit(&self, rng: &mut impl Rng) -> Vec<f64> {
        (0..self.dim()).map(|_| rng.gen::<f64>()).collect()
    }

    /// Build a calibration from `(name, value)` pairs (natural units).
    ///
    /// # Panics
    /// Panics if a name is unknown or missing.
    pub fn calibration_from_pairs(&self, pairs: &[(&str, f64)]) -> Calibration {
        let mut values = vec![f64::NAN; self.dim()];
        for (name, v) in pairs {
            let idx = self
                .index_of(name)
                .unwrap_or_else(|| panic!("unknown parameter {name:?}"));
            values[idx] = *v;
        }
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "missing parameter values: {:?}",
            self.params
                .iter()
                .zip(&values)
                .filter(|(_, v)| v.is_nan())
                .map(|(p, _)| &p.name)
                .collect::<Vec<_>>()
        );
        Calibration { values }
    }

    /// Value of the parameter named `name` within `calib`.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn value(&self, calib: &Calibration, name: &str) -> f64 {
        calib.values[self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))]
    }
}

/// A point in a [`ParameterSpace`], in natural units.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// One value per parameter, in the space's parameter order.
    pub values: Vec<f64>,
}

impl Calibration {
    /// Wrap a raw natural-unit vector.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::rng_from_seed;
    use proptest::prelude::*;

    fn space3() -> ParameterSpace {
        ParameterSpace::new()
            .with("lat", ParamKind::Continuous { lo: 0.0, hi: 0.01 })
            .with(
                "bw",
                ParamKind::Exponential {
                    lo_exp: 20.0,
                    hi_exp: 40.0,
                },
            )
            .with("conc", ParamKind::Integer { lo: 1, hi: 100 })
    }

    #[test]
    fn continuous_denormalize_endpoints() {
        let k = ParamKind::Continuous { lo: 2.0, hi: 6.0 };
        assert_eq!(k.denormalize(0.0), 2.0);
        assert_eq!(k.denormalize(1.0), 6.0);
        assert_eq!(k.denormalize(0.5), 4.0);
    }

    #[test]
    fn exponential_is_log_uniform() {
        let k = ParamKind::Exponential {
            lo_exp: 10.0,
            hi_exp: 20.0,
        };
        assert_eq!(k.denormalize(0.0), 1024.0);
        assert_eq!(k.denormalize(1.0), 1024.0 * 1024.0);
        assert_eq!(k.denormalize(0.5), 2f64.powi(15));
    }

    #[test]
    fn integer_covers_all_values_uniformly() {
        let k = ParamKind::Integer { lo: 1, hi: 3 };
        assert_eq!(k.denormalize(0.0), 1.0);
        assert_eq!(k.denormalize(0.34), 2.0);
        assert_eq!(k.denormalize(0.99), 3.0);
        assert_eq!(k.denormalize(1.0), 3.0);
    }

    #[test]
    fn normalize_roundtrips_through_denormalize() {
        let s = space3();
        let calib =
            s.calibration_from_pairs(&[("lat", 0.004), ("bw", 2f64.powi(30)), ("conc", 42.0)]);
        let unit = s.normalize(&calib);
        let back = s.denormalize(&unit);
        assert!((back.values[0] - 0.004).abs() < 1e-12);
        assert!((back.values[1].log2() - 30.0).abs() < 1e-9);
        assert_eq!(back.values[2], 42.0);
    }

    #[test]
    fn named_access() {
        let s = space3();
        let c = s.calibration_from_pairs(&[("conc", 7.0), ("lat", 0.001), ("bw", 1e6)]);
        assert_eq!(s.value(&c, "conc"), 7.0);
        assert_eq!(s.value(&c, "lat"), 0.001);
        assert_eq!(s.index_of("bw"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_name_rejected() {
        ParameterSpace::new()
            .with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
            .with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn missing_pair_rejected() {
        space3().calibration_from_pairs(&[("lat", 0.0)]);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_pair_rejected() {
        space3().calibration_from_pairs(&[("nope", 0.0)]);
    }

    #[test]
    fn sampling_is_in_unit_cube_and_deterministic() {
        let s = space3();
        let mut r1 = rng_from_seed(3);
        let mut r2 = rng_from_seed(3);
        let a = s.sample_unit(&mut r1);
        let b = s.sample_unit(&mut r2);
        assert_eq!(a, b);
        assert!(a.iter().all(|u| (0.0..=1.0).contains(u)));
        assert_eq!(a.len(), 3);
    }

    proptest! {
        #[test]
        fn prop_denormalize_within_bounds(u in 0.0f64..=1.0) {
            let c = ParamKind::Continuous { lo: -5.0, hi: 5.0 };
            let v = c.denormalize(u);
            prop_assert!((-5.0..=5.0).contains(&v));

            let e = ParamKind::Exponential { lo_exp: 0.0, hi_exp: 10.0 };
            let v = e.denormalize(u);
            prop_assert!((1.0..=1024.0).contains(&v));

            let i = ParamKind::Integer { lo: 3, hi: 9 };
            let v = i.denormalize(u);
            prop_assert!((3.0..=9.0).contains(&v));
            prop_assert_eq!(v, v.round());
        }

        #[test]
        fn prop_integer_roundtrip(v in 1i64..=100) {
            let k = ParamKind::Integer { lo: 1, hi: 100 };
            let u = k.normalize(v as f64);
            prop_assert_eq!(k.denormalize(u), v as f64);
        }

        #[test]
        fn prop_continuous_roundtrip(v in 0.0f64..=0.01) {
            let k = ParamKind::Continuous { lo: 0.0, hi: 0.01 };
            prop_assert!((k.denormalize(k.normalize(v)) - v).abs() < 1e-12);
        }

        #[test]
        fn prop_denormalize_monotone(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            for k in [
                ParamKind::Continuous { lo: -3.0, hi: 7.0 },
                ParamKind::Exponential { lo_exp: 5.0, hi_exp: 25.0 },
                ParamKind::Integer { lo: 0, hi: 50 },
            ] {
                prop_assert!(k.denormalize(lo) <= k.denormalize(hi));
            }
        }
    }
}
