//! Gradient-boosted quantile regression trees (the paper's BO-GBRT).
//!
//! Three boosted ensembles are fit on the pinball (quantile) loss at
//! q = 0.16, 0.50, and 0.84. The predictive mean is the median ensemble;
//! the predictive standard deviation is half the (0.84 − 0.16) interval —
//! exactly how scikit-optimize derives BO uncertainty from GBRT.

use super::tree::{RegressionTree, SplitStrategy, TreeConfig};
use super::Surrogate;
use numeric::rng_from_seed;

/// One boosted ensemble for a single quantile.
struct QuantileEnsemble {
    base: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
}

impl QuantileEnsemble {
    fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        q: f64,
        n_trees: usize,
        learning_rate: f64,
        config: &TreeConfig,
        seed: u64,
    ) -> Self {
        let mut rng = rng_from_seed(seed);
        let base = numeric::quantile(y, q);
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            // Negative gradient of the pinball loss at the current fit:
            // q where under-predicting, q - 1 where over-predicting.
            let residuals: Vec<f64> = y
                .iter()
                .zip(&pred)
                .map(|(yi, pi)| if yi > pi { q } else { q - 1.0 })
                .collect();
            let tree = RegressionTree::fit(x, &residuals, config, &mut rng);
            for (pi, xi) in pred.iter_mut().zip(x) {
                *pi += learning_rate * tree.predict(xi);
            }
            trees.push(tree);
        }
        Self {
            base,
            trees,
            learning_rate,
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }
}

/// Gradient boosting with quantile loss at q = {0.16, 0.50, 0.84}.
pub struct GradientBoostingQuantile {
    /// Trees per quantile ensemble.
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Growth limits for the (shallow) boosted trees.
    pub config: TreeConfig,
    ensembles: Option<[QuantileEnsemble; 3]>,
}

impl Default for GradientBoostingQuantile {
    fn default() -> Self {
        Self {
            n_trees: 40,
            learning_rate: 0.2,
            config: TreeConfig {
                max_depth: 3,
                min_leaf: 3,
                max_features: None,
                strategy: SplitStrategy::Exhaustive,
            },
            ensembles: None,
        }
    }
}

impl Surrogate for GradientBoostingQuantile {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        // The pinball gradient is in units of probability; scale it back to
        // the target's units via the target spread so convergence does not
        // depend on the loss magnitude.
        let spread = (numeric::max(y) - numeric::min(y)).max(1e-12);
        let cfg = self.config;
        let fit_q = |q: f64, seed: u64| {
            let mut e = QuantileEnsemble::fit(
                x,
                y,
                q,
                self.n_trees,
                self.learning_rate * spread,
                &cfg,
                seed,
            );
            e.learning_rate = self.learning_rate * spread;
            e
        };
        self.ensembles = Some([fit_q(0.16, 101), fit_q(0.50, 102), fit_q(0.84, 103)]);
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let e = self.ensembles.as_ref().expect("predict before fit");
        let lo = e[0].predict(x);
        let mid = e[1].predict(x);
        let hi = e[2].predict(x);
        let std = ((hi - lo) / 2.0).abs().max(1e-9);
        (mid, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 59.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| 2.0 * p[0] + 1.0).collect();
        (x, y)
    }

    #[test]
    fn median_tracks_a_linear_function() {
        let (x, y) = linear_data();
        let mut g = GradientBoostingQuantile::default();
        g.fit(&x, &y);
        for q in [0.1, 0.4, 0.8] {
            let (mean, _) = g.predict(&[q]);
            assert!((mean - (2.0 * q + 1.0)).abs() < 0.4, "at {q}: {mean}");
        }
    }

    #[test]
    fn quantile_interval_is_ordered() {
        let (x, y) = linear_data();
        let mut g = GradientBoostingQuantile::default();
        g.fit(&x, &y);
        let e = g.ensembles.as_ref().unwrap();
        for q in [0.2, 0.5, 0.9] {
            let lo = e[0].predict(&[q]);
            let hi = e[2].predict(&[q]);
            assert!(hi >= lo - 0.3, "lo {lo} hi {hi} at {q}");
        }
    }

    #[test]
    fn std_is_positive_and_finite() {
        let (x, y) = linear_data();
        let mut g = GradientBoostingQuantile::default();
        g.fit(&x, &y);
        let (_, std) = g.predict(&[0.33]);
        assert!(std > 0.0 && std.is_finite());
    }

    #[test]
    fn learns_a_step_function() {
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 79.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| if p[0] < 0.5 { 0.0 } else { 10.0 })
            .collect();
        let mut g = GradientBoostingQuantile::default();
        g.fit(&x, &y);
        assert!(g.predict(&[0.1]).0 < 3.0);
        assert!(g.predict(&[0.9]).0 > 7.0);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        GradientBoostingQuantile::default().predict(&[0.1]);
    }
}
