//! Random-forest and extra-trees surrogates.
//!
//! Both predict the mean over an ensemble of regression trees and use the
//! inter-tree standard deviation as the uncertainty estimate, which is how
//! scikit-optimize turns forests into BO surrogates.

use super::tree::{RegressionTree, SplitStrategy, TreeConfig};
use super::Surrogate;
use numeric::rng_from_seed;
use rand::rngs::StdRng;
use rand::Rng;

fn ensemble_predict(trees: &[RegressionTree], x: &[f64]) -> (f64, f64) {
    let preds: Vec<f64> = trees.iter().map(|t| t.predict(x)).collect();
    (numeric::mean(&preds), numeric::std_dev(&preds))
}

/// Bagged regression trees with per-split feature subsampling.
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Growth limits for each tree.
    pub config: TreeConfig,
    seed: u64,
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// A forest with default hyperparameters (25 trees, depth 9,
    /// sqrt-features per split).
    pub fn new(seed: u64) -> Self {
        Self {
            n_trees: 25,
            config: TreeConfig {
                max_depth: 9,
                min_leaf: 2,
                max_features: None, // resolved to sqrt(d) at fit time
                strategy: SplitStrategy::Exhaustive,
            },
            seed,
            trees: Vec::new(),
        }
    }
}

impl Surrogate for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        let dim = x[0].len();
        let mut config = self.config;
        if config.max_features.is_none() {
            config.max_features = Some(((dim as f64).sqrt().ceil() as usize).max(1));
        }
        let mut rng: StdRng = rng_from_seed(self.seed);
        self.trees = (0..self.n_trees)
            .map(|_| {
                // Bootstrap resample.
                let (bx, by): (Vec<Vec<f64>>, Vec<f64>) = (0..x.len())
                    .map(|_| {
                        let i = rng.gen_range(0..x.len());
                        (x[i].clone(), y[i])
                    })
                    .unzip();
                RegressionTree::fit(&bx, &by, &config, &mut rng)
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert!(!self.trees.is_empty(), "predict before fit");
        ensemble_predict(&self.trees, x)
    }
}

/// Extremely-randomized trees: no bootstrap, one random threshold per
/// candidate feature.
pub struct ExtraTrees {
    /// Number of trees.
    pub n_trees: usize,
    /// Growth limits for each tree.
    pub config: TreeConfig,
    seed: u64,
    trees: Vec<RegressionTree>,
}

impl ExtraTrees {
    /// An ensemble with default hyperparameters (25 trees, depth 9).
    pub fn new(seed: u64) -> Self {
        Self {
            n_trees: 25,
            config: TreeConfig {
                max_depth: 9,
                min_leaf: 2,
                max_features: None,
                strategy: SplitStrategy::RandomThreshold,
            },
            seed,
            trees: Vec::new(),
        }
    }
}

impl Surrogate for ExtraTrees {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        let mut rng: StdRng = rng_from_seed(self.seed);
        self.trees = (0..self.n_trees)
            .map(|_| RegressionTree::fit(x, y, &self.config, &mut rng))
            .collect();
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert!(!self.trees.is_empty(), "predict before fit");
        ensemble_predict(&self.trees, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 79.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| if p[0] < 0.5 { 0.0 } else { 4.0 })
            .collect();
        (x, y)
    }

    #[test]
    fn random_forest_learns_step() {
        let (x, y) = step_data();
        let mut rf = RandomForest::new(1);
        rf.fit(&x, &y);
        let (lo, _) = rf.predict(&[0.2]);
        let (hi, _) = rf.predict(&[0.8]);
        assert!(lo < 1.0, "lo {lo}");
        assert!(hi > 3.0, "hi {hi}");
    }

    #[test]
    fn extra_trees_learns_step() {
        let (x, y) = step_data();
        let mut et = ExtraTrees::new(1);
        et.fit(&x, &y);
        let (lo, _) = et.predict(&[0.2]);
        let (hi, _) = et.predict(&[0.8]);
        assert!(lo < 1.0, "lo {lo}");
        assert!(hi > 3.0, "hi {hi}");
    }

    #[test]
    fn forest_std_is_higher_near_the_discontinuity() {
        let (x, y) = step_data();
        let mut rf = RandomForest::new(3);
        rf.fit(&x, &y);
        let (_, std_flat) = rf.predict(&[0.1]);
        let (_, std_edge) = rf.predict(&[0.5]);
        assert!(std_edge >= std_flat, "edge {std_edge} vs flat {std_flat}");
    }

    #[test]
    fn refit_replaces_trees() {
        let (x, y) = step_data();
        let mut rf = RandomForest::new(1);
        rf.fit(&x, &y);
        let inverted: Vec<f64> = y.iter().map(|v| 4.0 - v).collect();
        rf.fit(&x, &inverted);
        let (lo, _) = rf.predict(&[0.8]);
        assert!(lo < 1.0, "refit must win: {lo}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = step_data();
        let pred = |seed| {
            let mut rf = RandomForest::new(seed);
            rf.fit(&x, &y);
            rf.predict(&[0.43])
        };
        assert_eq!(pred(9), pred(9));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn forest_predict_before_fit_panics() {
        RandomForest::new(0).predict(&[0.5]);
    }
}
