//! A CART-style regression tree, the building block of the random-forest,
//! extra-trees, and gradient-boosting surrogates.
//!
//! Splits minimize the weighted sum of child variances. Split candidates
//! are configurable per use: exhaustive midpoints (CART / boosting),
//! random feature subsets (random forest), or a single random threshold
//! per feature (extra-trees).

use rand::rngs::StdRng;
use rand::Rng;

/// How split thresholds are chosen at each node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Try the midpoint between every pair of consecutive sorted values
    /// (classic CART).
    Exhaustive,
    /// Draw one uniform-random threshold per candidate feature
    /// (extra-trees style).
    RandomThreshold,
}

/// Tree growth limits.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_leaf: usize,
    /// Number of features examined per split (`None` = all).
    pub max_features: Option<usize>,
    /// Threshold selection strategy.
    pub strategy: SplitStrategy,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_leaf: 3,
            max_features: None,
            strategy: SplitStrategy::Exhaustive,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree to `(x, y)` with the given config; `rng` drives feature
    /// subsetting and random thresholds.
    ///
    /// # Panics
    /// Panics if `x` is empty or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &TreeConfig, rng: &mut StdRng) -> Self {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit a tree on no data");
        let mut tree = Self { nodes: Vec::new() };
        let indices: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, indices, 0, config, rng);
        tree
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (leaves + splits).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let node_mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: node_mean });
            nodes.len() - 1
        };

        if depth >= config.max_depth || indices.len() < 2 * config.min_leaf {
            return make_leaf(&mut self.nodes);
        }

        let dim = x[0].len();
        let n_features = config.max_features.unwrap_or(dim).clamp(1, dim);
        // Sample a feature subset without replacement (partial Fisher-Yates).
        let mut features: Vec<usize> = (0..dim).collect();
        for i in 0..n_features {
            let j = i + rng.gen_range(0..dim - i);
            features.swap(i, j);
        }
        features.truncate(n_features);

        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
        for &f in &features {
            let thresholds: Vec<f64> = match config.strategy {
                SplitStrategy::Exhaustive => {
                    // total_cmp instead of partial_cmp().expect(): a
                    // single NaN feature value (e.g. from a quarantined
                    // observation) must not panic the surrogate fit
                    // mid-calibration. Non-finite values are dropped —
                    // a midpoint with a NaN or infinite endpoint is not
                    // a usable threshold.
                    let mut vals: Vec<f64> = indices
                        .iter()
                        .map(|&i| x[i][f])
                        .filter(|v| v.is_finite())
                        .collect();
                    vals.sort_by(f64::total_cmp);
                    vals.dedup();
                    vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
                }
                SplitStrategy::RandomThreshold => {
                    let lo = indices
                        .iter()
                        .map(|&i| x[i][f])
                        .fold(f64::INFINITY, f64::min);
                    let hi = indices
                        .iter()
                        .map(|&i| x[i][f])
                        .fold(f64::NEG_INFINITY, f64::max);
                    if hi > lo {
                        vec![lo + rng.gen::<f64>() * (hi - lo)]
                    } else {
                        Vec::new()
                    }
                }
            };
            for t in thresholds {
                // Weighted sum of child squared deviations via sufficient stats.
                let (mut nl, mut sl, mut ql) = (0usize, 0.0f64, 0.0f64);
                let (mut nr, mut sr, mut qr) = (0usize, 0.0f64, 0.0f64);
                for &i in &indices {
                    if x[i][f] <= t {
                        nl += 1;
                        sl += y[i];
                        ql += y[i] * y[i];
                    } else {
                        nr += 1;
                        sr += y[i];
                        qr += y[i] * y[i];
                    }
                }
                if nl < config.min_leaf || nr < config.min_leaf {
                    continue;
                }
                let score = (ql - sl * sl / nl as f64) + (qr - sr * sr / nr as f64);
                if best.is_none_or(|(b, _, _)| score < b) {
                    best = Some((score, f, t));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        // Reserve this node's slot, then grow children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: node_mean }); // placeholder
        let left = self.grow(x, y, left_idx, depth + 1, config, rng);
        let right = self.grow(x, y, right_idx, depth + 1, config, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::rng_from_seed;

    fn grid_xy(f: impl Fn(f64) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 63.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| f(p[0])).collect();
        (x, y)
    }

    #[test]
    fn fits_step_function_exactly() {
        let (x, y) = grid_xy(|v| if v < 0.5 { 1.0 } else { 5.0 });
        let mut rng = rng_from_seed(0);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.predict(&[0.2]), 1.0);
        assert_eq!(tree.predict(&[0.8]), 5.0);
    }

    #[test]
    fn nan_feature_value_does_not_panic_the_fit() {
        // Regression: the exhaustive splitter sorted candidate
        // thresholds with partial_cmp().expect("NaN feature value"), so
        // a single NaN observation panicked the GBRT surrogate
        // mid-calibration. NaNs now sort via total_cmp and are dropped
        // from the threshold candidates.
        let (mut x, y) = grid_xy(|v| if v < 0.5 { 1.0 } else { 5.0 });
        x[10][0] = f64::NAN;
        let mut rng = rng_from_seed(0);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        assert!(tree.predict(&[0.8]).is_finite());
        assert!(tree.predict(&[0.2]).is_finite());
    }

    #[test]
    fn respects_max_depth_zero() {
        let (x, y) = grid_xy(|v| v);
        let mut rng = rng_from_seed(0);
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg, &mut rng);
        assert_eq!(tree.node_count(), 1);
        let mean = numeric::mean(&y);
        assert!((tree.predict(&[0.1]) - mean).abs() < 1e-12);
    }

    #[test]
    fn min_leaf_prevents_tiny_leaves() {
        let (x, y) = grid_xy(|v| v);
        let mut rng = rng_from_seed(0);
        let cfg = TreeConfig {
            min_leaf: 32,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg, &mut rng);
        // 64 points, min leaf 32: at most one split.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn approximates_smooth_function() {
        let (x, y) = grid_xy(|v| (v * 5.0).sin());
        let mut rng = rng_from_seed(0);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        let mut err: f64 = 0.0;
        for i in 0..20 {
            let q = i as f64 / 19.0;
            err = err.max((tree.predict(&[q]) - (q * 5.0).sin()).abs());
        }
        assert!(err < 0.2, "max error {err}");
    }

    #[test]
    fn random_threshold_strategy_still_reduces_error() {
        let (x, y) = grid_xy(|v| if v < 0.3 { 0.0 } else { 10.0 });
        let mut rng = rng_from_seed(3);
        let cfg = TreeConfig {
            strategy: SplitStrategy::RandomThreshold,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg, &mut rng);
        assert!(tree.predict(&[0.05]) < 3.0);
        assert!(tree.predict(&[0.95]) > 7.0);
    }

    #[test]
    fn two_dimensional_split() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                x.push(vec![i as f64 / 7.0, j as f64 / 7.0]);
                y.push(if j >= 4 { 1.0 } else { 0.0 }); // depends on dim 1 only
            }
        }
        let mut rng = rng_from_seed(0);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        assert!(tree.predict(&[0.5, 0.9]) > 0.9);
        assert!(tree.predict(&[0.5, 0.1]) < 0.1);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let (x, _) = grid_xy(|v| v);
        let y = vec![7.0; x.len()];
        let mut rng = rng_from_seed(0);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.predict(&[0.4]), 7.0);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_data_panics() {
        let mut rng = rng_from_seed(0);
        RegressionTree::fit(&[], &[], &TreeConfig::default(), &mut rng);
    }
}
