//! Surrogate regressors for Bayesian optimization (paper §4).
//!
//! The paper's framework uses scikit-optimize's four regressors: Gaussian
//! Process (BO-GP), Random Forest (BO-RF), Extra Trees (BO-ET), and
//! Gradient Boosting Quantile Regressor Trees (BO-GBRT). All four are
//! implemented here from scratch. Each predicts a mean and an uncertainty
//! (standard deviation) at a query point, which the Expected-Improvement
//! acquisition combines into an exploration/exploitation score.

mod forest;
mod gbrt;
mod gp;
mod tree;

pub use forest::{ExtraTrees, RandomForest};
pub use gbrt::GradientBoostingQuantile;
pub use gp::GaussianProcess;
pub use tree::RegressionTree;

/// A regressor usable as a Bayesian-optimization surrogate.
pub trait Surrogate: Send + Sync {
    /// Fit to `(x, y)` observations; `x` points are unit-hypercube
    /// coordinates. May be called repeatedly with growing data.
    ///
    /// # Panics
    /// Implementations panic if `x.len() != y.len()` or `x` is empty.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predictive mean and standard deviation at `x`.
    fn predict(&self, x: &[f64]) -> (f64, f64);
}

/// Which surrogate a [`crate::algorithms::BayesianOpt`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SurrogateKind {
    /// Gaussian process with an RBF kernel (scikit-optimize's default).
    GaussianProcess,
    /// Bagged regression trees with feature subsampling.
    RandomForest,
    /// Extremely-randomized trees (random split thresholds, no bagging).
    ExtraTrees,
    /// Gradient-boosted trees on quantile loss (q = 0.16, 0.50, 0.84).
    Gbrt,
}

impl SurrogateKind {
    /// All surrogate kinds, in paper order.
    pub const ALL: [SurrogateKind; 4] = [
        SurrogateKind::GaussianProcess,
        SurrogateKind::RandomForest,
        SurrogateKind::ExtraTrees,
        SurrogateKind::Gbrt,
    ];

    /// Report name (matches the paper's BO-x notation suffix).
    pub fn name(self) -> &'static str {
        match self {
            SurrogateKind::GaussianProcess => "GP",
            SurrogateKind::RandomForest => "RF",
            SurrogateKind::ExtraTrees => "ET",
            SurrogateKind::Gbrt => "GBRT",
        }
    }

    /// Instantiate with default hyperparameters; `seed` drives any
    /// internal randomness (bootstrap resampling, random thresholds).
    pub fn build(self, seed: u64) -> Box<dyn Surrogate> {
        match self {
            SurrogateKind::GaussianProcess => Box::new(GaussianProcess::default()),
            SurrogateKind::RandomForest => Box::new(RandomForest::new(seed)),
            SurrogateKind::ExtraTrees => Box::new(ExtraTrees::new(seed)),
            SurrogateKind::Gbrt => Box::new(GradientBoostingQuantile::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared sanity check: every surrogate should roughly interpolate a
    /// smooth 1-D function and report uncertainty away from the data.
    fn check_fits_smooth_function(mut s: Box<dyn Surrogate>, tol: f64) {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 6.0).sin()).collect();
        s.fit(&x, &y);
        let mut worst: f64 = 0.0;
        for i in 0..10 {
            let q = 0.05 + 0.9 * i as f64 / 9.0;
            let (mean, std) = s.predict(&[q]);
            worst = worst.max((mean - (q * 6.0).sin()).abs());
            assert!(std >= 0.0 && std.is_finite());
        }
        assert!(worst < tol, "worst interpolation error {worst} > {tol}");
    }

    #[test]
    fn all_kinds_fit_smooth_function() {
        check_fits_smooth_function(SurrogateKind::GaussianProcess.build(1), 0.05);
        check_fits_smooth_function(SurrogateKind::RandomForest.build(1), 0.35);
        check_fits_smooth_function(SurrogateKind::ExtraTrees.build(1), 0.35);
        check_fits_smooth_function(SurrogateKind::Gbrt.build(1), 0.35);
    }

    #[test]
    fn names_match_paper_notation() {
        let names: Vec<&str> = SurrogateKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["GP", "RF", "ET", "GBRT"]);
    }
}
