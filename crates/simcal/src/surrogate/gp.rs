//! Gaussian-process regression with an RBF kernel.
//!
//! Targets are standardized before fitting; the RBF length scale is chosen
//! from a small grid by log marginal likelihood, which is the behaviour
//! that matters for BO (adapting to how wiggly the loss landscape is)
//! without a full hyperparameter optimizer.

use super::Surrogate;
use numeric::Matrix;

/// Gaussian process with kernel
/// `k(a, b) = exp(-||a - b||^2 / (2 l^2)) + noise * 1{a == b}` over
/// standardized targets.
#[derive(Clone, Debug)]
pub struct GaussianProcess {
    /// Candidate RBF length scales (unit-cube coordinates).
    pub length_scales: Vec<f64>,
    /// Observation-noise variance added to the kernel diagonal.
    pub noise: f64,
    /// Cap on training points; the most recent and best points are kept.
    pub max_points: usize,
    fitted: Option<Fitted>,
}

#[derive(Clone, Debug)]
struct Fitted {
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: numeric::Cholesky,
    length_scale: f64,
    y_mean: f64,
    y_std: f64,
}

impl Default for GaussianProcess {
    fn default() -> Self {
        Self {
            length_scales: vec![0.05, 0.1, 0.2, 0.5, 1.0],
            noise: 1e-6,
            max_points: 200,
            fitted: None,
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl GaussianProcess {
    /// Subsample training data to `max_points`: keep the `max_points / 2`
    /// best (lowest-y) points plus the most recent remainder. BO cares most
    /// about modelling the promising region and the frontier.
    fn subsample<'a>(&self, x: &'a [Vec<f64>], y: &'a [f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        if x.len() <= self.max_points {
            return (x.to_vec(), y.to_vec());
        }
        let keep_best = self.max_points / 2;
        let mut order: Vec<usize> = (0..x.len()).collect();
        order.sort_by(|&a, &b| y[a].partial_cmp(&y[b]).unwrap_or(std::cmp::Ordering::Equal));
        let mut selected: Vec<usize> = order[..keep_best].to_vec();
        let recent_start = x.len() - (self.max_points - keep_best);
        for i in recent_start..x.len() {
            if !selected.contains(&i) {
                selected.push(i);
            }
        }
        selected.sort_unstable();
        selected.truncate(self.max_points);
        (
            selected.iter().map(|&i| x[i].clone()).collect(),
            selected.iter().map(|&i| y[i]).collect(),
        )
    }

    fn fit_at_scale(
        x: &[Vec<f64>],
        ys: &[f64],
        l: f64,
        noise: f64,
    ) -> Option<(numeric::Cholesky, Vec<f64>, f64)> {
        let n = x.len();
        let mut k =
            Matrix::from_symmetric_fn(n, |i, j| (-sq_dist(&x[i], &x[j]) / (2.0 * l * l)).exp());
        k.add_diagonal(noise + 1e-10);
        let chol = k.cholesky()?;
        let alpha = chol.solve(ys);
        // log marginal likelihood = -0.5 y^T alpha - 0.5 log det K - n/2 log 2pi
        let lml = -0.5 * ys.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>()
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        Some((chol, alpha, lml))
    }
}

impl Surrogate for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        let (x, y) = self.subsample(x, y);

        let y_mean = numeric::mean(&y);
        let y_std = numeric::std_dev(&y).max(1e-12);
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let mut best: Option<(f64, numeric::Cholesky, Vec<f64>, f64)> = None;
        for &l in &self.length_scales {
            if let Some((chol, alpha, lml)) = Self::fit_at_scale(&x, &ys, l, self.noise) {
                if best.as_ref().is_none_or(|(b, ..)| lml > *b) {
                    best = Some((lml, chol, alpha, l));
                }
            }
        }
        let (_, chol, alpha, length_scale) =
            best.expect("at least one length scale must yield a PD kernel");
        self.fitted = Some(Fitted {
            x,
            alpha,
            chol,
            length_scale,
            y_mean,
            y_std,
        });
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let f = self.fitted.as_ref().expect("predict before fit");
        let l = f.length_scale;
        let kstar: Vec<f64> =
            f.x.iter()
                .map(|xi| (-sq_dist(xi, x) / (2.0 * l * l)).exp())
                .collect();
        let mean_std = kstar.iter().zip(&f.alpha).map(|(a, b)| a * b).sum::<f64>();
        let v = f.chol.solve_lower(&kstar);
        let var = (1.0 + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        (f.y_mean + f.y_std * mean_std, f.y_std * var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_training_points_closely() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let mut gp = GaussianProcess::default();
        gp.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            let (mean, std) = gp.predict(xi);
            assert!((mean - yi).abs() < 1e-2, "mean {mean} vs {yi}");
            assert!(std < 0.1, "training-point std should be small: {std}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2]];
        let y = vec![0.0, 1.0, 2.0];
        let mut gp = GaussianProcess::default();
        gp.fit(&x, &y);
        let (_, std_near) = gp.predict(&[0.1]);
        let (_, std_far) = gp.predict(&[0.95]);
        assert!(std_far > std_near * 2.0, "near {std_near}, far {std_far}");
    }

    #[test]
    fn constant_targets_predict_the_constant() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0]).collect();
        let y = vec![3.0; 5];
        let mut gp = GaussianProcess::default();
        gp.fit(&x, &y);
        let (mean, _) = gp.predict(&[0.5]);
        assert!((mean - 3.0).abs() < 1e-6);
    }

    #[test]
    fn subsampling_keeps_best_points() {
        let gp = GaussianProcess {
            max_points: 10,
            ..Default::default()
        };
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
        // Minimum at index 7.
        let y: Vec<f64> = (0..50).map(|i| ((i as f64) - 7.0).abs()).collect();
        let (xs, ys) = gp.subsample(&x, &y);
        assert_eq!(xs.len(), 10);
        assert!(ys.contains(&0.0), "best point must survive subsampling");
    }

    #[test]
    fn fit_handles_duplicate_points() {
        let x = vec![vec![0.5], vec![0.5], vec![0.7]];
        let y = vec![1.0, 1.0, 2.0];
        let mut gp = GaussianProcess::default();
        gp.fit(&x, &y); // must not panic (jitter on the duplicate Gram rows)
        let (mean, _) = gp.predict(&[0.5]);
        assert!((mean - 1.0).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        GaussianProcess::default().predict(&[0.5]);
    }

    #[test]
    fn multidimensional_fit() {
        let mut pts = Vec::new();
        let mut ys = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let p = vec![i as f64 / 5.0, j as f64 / 5.0];
                ys.push(p[0] + 2.0 * p[1]);
                pts.push(p);
            }
        }
        let mut gp = GaussianProcess::default();
        gp.fit(&pts, &ys);
        let (mean, _) = gp.predict(&[0.5, 0.5]);
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
    }
}
