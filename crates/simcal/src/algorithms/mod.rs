//! Search algorithms (paper §4): grid search, random search, gradient
//! descent with random restarts, and Bayesian optimization with four
//! surrogate regressors.
//!
//! Every algorithm drives a budget-enforcing [`Evaluator`]
//! and terminates when the budget is exhausted, so that different
//! algorithms can be compared fairly under the same budget — the core of
//! the paper's methodology.

mod bayesian;
mod gradient;
mod grid;
mod random;

pub use bayesian::BayesianOpt;
pub use gradient::GradientDescent;
pub use grid::GridSearch;
pub use random::RandomSearch;

use crate::budget::Evaluator;
use crate::surrogate::SurrogateKind;
use serde::{Deserialize, Serialize};

/// A calibration search algorithm.
pub trait SearchAlgorithm: Sync {
    /// Short identifier for reports (e.g. `"BO-GP"`).
    fn name(&self) -> &'static str;

    /// Search until the evaluator's budget is exhausted. The evaluator
    /// records the incumbent and the convergence trace.
    fn search(&self, evaluator: &Evaluator<'_>, seed: u64);
}

/// The paper's algorithm menu, as a plain enum for sweeps and CLI flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Exhaustive discretized grid, resolution doubled per iteration.
    Grid,
    /// Uniform random sampling.
    Random,
    /// Random-restart finite-difference gradient descent.
    Gradient,
    /// Bayesian optimization with a Gaussian-process surrogate.
    BoGp,
    /// Bayesian optimization with a random-forest surrogate.
    BoRf,
    /// Bayesian optimization with an extra-trees surrogate.
    BoEt,
    /// Bayesian optimization with gradient-boosted quantile trees.
    BoGbrt,
}

impl AlgorithmKind {
    /// All algorithm kinds, in paper order.
    pub const ALL: [AlgorithmKind; 7] = [
        AlgorithmKind::Grid,
        AlgorithmKind::Random,
        AlgorithmKind::Gradient,
        AlgorithmKind::BoGp,
        AlgorithmKind::BoRf,
        AlgorithmKind::BoEt,
        AlgorithmKind::BoGbrt,
    ];

    /// Report name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Grid => "GRID",
            AlgorithmKind::Random => "RAND",
            AlgorithmKind::Gradient => "GRAD",
            AlgorithmKind::BoGp => "BO-GP",
            AlgorithmKind::BoRf => "BO-RF",
            AlgorithmKind::BoEt => "BO-ET",
            AlgorithmKind::BoGbrt => "BO-GBRT",
        }
    }

    /// Instantiate the algorithm with its default configuration.
    pub fn build(self) -> Box<dyn SearchAlgorithm> {
        match self {
            AlgorithmKind::Grid => Box::new(GridSearch::default()),
            AlgorithmKind::Random => Box::new(RandomSearch::default()),
            AlgorithmKind::Gradient => Box::new(GradientDescent::default()),
            AlgorithmKind::BoGp => Box::new(BayesianOpt::new(SurrogateKind::GaussianProcess)),
            AlgorithmKind::BoRf => Box::new(BayesianOpt::new(SurrogateKind::RandomForest)),
            AlgorithmKind::BoEt => Box::new(BayesianOpt::new(SurrogateKind::ExtraTrees)),
            AlgorithmKind::BoGbrt => Box::new(BayesianOpt::new(SurrogateKind::Gbrt)),
        }
    }

    /// Parse a paper-notation name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "GRID" => Some(AlgorithmKind::Grid),
            "RAND" | "RANDOM" => Some(AlgorithmKind::Random),
            "GRAD" | "GRADIENT" => Some(AlgorithmKind::Gradient),
            "BO-GP" | "BOGP" => Some(AlgorithmKind::BoGp),
            "BO-RF" | "BORF" => Some(AlgorithmKind::BoRf),
            "BO-ET" | "BOET" => Some(AlgorithmKind::BoEt),
            "BO-GBRT" | "BOGBRT" => Some(AlgorithmKind::BoGbrt),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AlgorithmKind::parse("nonsense"), None);
    }

    #[test]
    fn build_produces_matching_names() {
        assert_eq!(AlgorithmKind::BoGp.build().name(), "BO-GP");
        assert_eq!(AlgorithmKind::Random.build().name(), "RAND");
        assert_eq!(AlgorithmKind::Grid.build().name(), "GRID");
        assert_eq!(AlgorithmKind::Gradient.build().name(), "GRAD");
    }
}
