//! Bayesian optimization (paper's BO-GP / BO-RF / BO-ET / BO-GBRT).
//!
//! Sequential model-based optimization: an incrementally refit surrogate
//! models the loss landscape; candidates are scored with Expected
//! Improvement, balancing exploration (high predictive uncertainty) and
//! exploitation (low predicted loss); the top-scoring batch is evaluated
//! in parallel and added to the training set.

use super::SearchAlgorithm;
use crate::budget::Evaluator;
use crate::surrogate::SurrogateKind;
use numeric::{norm_cdf, norm_pdf, rng_from_seed};
use rand::Rng;
use rayon::prelude::*;

/// Bayesian optimization with a pluggable surrogate.
#[derive(Clone, Debug)]
pub struct BayesianOpt {
    /// Surrogate regressor.
    pub surrogate: SurrogateKind,
    /// Random points evaluated before the first surrogate fit.
    pub n_initial: usize,
    /// Points proposed (and evaluated in parallel) per iteration.
    pub batch_size: usize,
    /// Size of the random candidate pool scored by the acquisition.
    pub n_candidates: usize,
    /// Fraction of candidates drawn as local perturbations of the
    /// incumbent rather than uniformly (exploitation bias).
    pub local_fraction: f64,
    /// Standard deviation of the local perturbations (unit-cube units).
    pub local_sigma: f64,
    /// Warm-start observations `(unit point, loss)` from a previous
    /// calibration (e.g. a neighbouring simulator version or scale, read
    /// back from the persistent cache). They join the surrogate's fit
    /// set and steer the incumbent anchor of the acquisition, but are
    /// never themselves evaluated, never consume budget, and never enter
    /// the evaluator's incumbent — the reported best always comes from
    /// points this run actually evaluated. Non-finite losses and points
    /// of the wrong dimension are ignored.
    pub warm_start: Vec<(Vec<f64>, f64)>,
}

impl BayesianOpt {
    /// Default configuration for the given surrogate.
    pub fn new(surrogate: SurrogateKind) -> Self {
        Self {
            surrogate,
            n_initial: 16,
            batch_size: 8,
            n_candidates: 512,
            local_fraction: 0.3,
            local_sigma: 0.08,
            warm_start: Vec::new(),
        }
    }

    /// Attach warm-start observations (see the `warm_start` field).
    pub fn with_warm_start(mut self, warm_start: Vec<(Vec<f64>, f64)>) -> Self {
        self.warm_start = warm_start;
        self
    }
}

/// Expected improvement of a candidate with predictive `(mean, std)` over
/// the incumbent `best`: `(best - mean) Φ(z) + σ φ(z)`, `z = (best - mean)/σ`.
fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    (best - mean) * norm_cdf(z) + std * norm_pdf(z)
}

impl SearchAlgorithm for BayesianOpt {
    fn name(&self) -> &'static str {
        match self.surrogate {
            SurrogateKind::GaussianProcess => "BO-GP",
            SurrogateKind::RandomForest => "BO-RF",
            SurrogateKind::ExtraTrees => "BO-ET",
            SurrogateKind::Gbrt => "BO-GBRT",
        }
    }

    fn search(&self, evaluator: &Evaluator<'_>, seed: u64) {
        let dim = evaluator.space().dim();
        let mut rng = rng_from_seed(seed);

        // Warm-start observations participate in every surrogate fit but
        // are never evaluated and never consume budget.
        let warm: Vec<(Vec<f64>, f64)> = self
            .warm_start
            .iter()
            .filter(|(x, y)| x.len() == dim && y.is_finite())
            .cloned()
            .collect();

        // Observation history (unit points and losses).
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();

        // Initial design: uniform random.
        let init: Vec<Vec<f64>> = (0..self.n_initial.max(2))
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect();
        match evaluator.eval_batch(&init) {
            Some(losses) => {
                let n = losses.len();
                xs.extend_from_slice(&init[..n]);
                ys.extend(losses);
            }
            None => return,
        }

        let mut surrogate = self.surrogate.build(seed ^ 0x5eed);
        while !evaluator.exhausted() {
            // Quarantined evaluations surface as +inf losses (and a
            // custom evaluator could hand back NaN); non-finite pairs
            // must never reach the surrogate fit or pick the incumbent —
            // in release builds they would silently poison every
            // subsequent prediction. In the fault-free case the filter
            // is a no-op, so trajectories are unchanged.
            let (fit_xs, fit_ys): (Vec<Vec<f64>>, Vec<f64>) = warm
                .iter()
                .map(|(x, y)| (x.clone(), *y))
                .chain(
                    xs.iter()
                        .zip(&ys)
                        .filter(|&(_, y)| y.is_finite())
                        .map(|(x, &y)| (x.clone(), y)),
                )
                .unzip();
            if fit_xs.is_empty() {
                // Every evaluation so far failed: nothing to model, so
                // explore uniformly at random until something survives.
                let batch: Vec<Vec<f64>> = (0..self.batch_size.max(1))
                    .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
                    .collect();
                match evaluator.eval_batch(&batch) {
                    Some(losses) => {
                        let n = losses.len();
                        xs.extend_from_slice(&batch[..n]);
                        ys.extend(losses);
                    }
                    None => return,
                }
                continue;
            }
            surrogate.fit(&fit_xs, &fit_ys);
            let best_y = fit_ys.iter().copied().fold(f64::INFINITY, f64::min);
            let best_x = fit_xs[numeric::argmin(&fit_ys).expect("non-empty history")].clone();

            // Candidate pool: uniform exploration, multi-scale Gaussian
            // perturbations of the incumbent, and single-coordinate
            // mutations (the loss landscapes of calibration problems are
            // largely axis-aligned: one parameter per simulated component).
            let n_local = (self.n_candidates as f64 * self.local_fraction) as usize;
            let n_coord = n_local; // same share for coordinate mutations
            let scales = [
                self.local_sigma * 2.0,
                self.local_sigma,
                self.local_sigma * 0.25,
            ];
            let candidates: Vec<Vec<f64>> = (0..self.n_candidates)
                .map(|i| {
                    if i < n_local {
                        let sigma = scales[i % scales.len()];
                        best_x
                            .iter()
                            .map(|&v| numeric::normal(&mut rng, v, sigma).clamp(0.0, 1.0))
                            .collect()
                    } else if i < n_local + n_coord {
                        let mut c = best_x.clone();
                        let d = rng.gen_range(0..dim);
                        c[d] = if i % 2 == 0 {
                            rng.gen::<f64>()
                        } else {
                            let sigma = scales[i % scales.len()];
                            numeric::normal(&mut rng, c[d], sigma).clamp(0.0, 1.0)
                        };
                        c
                    } else {
                        (0..dim).map(|_| rng.gen::<f64>()).collect()
                    }
                })
                .collect();

            // Acquisition portfolio: half the batch by Expected
            // Improvement (exploration/exploitation balance), half by pure
            // predicted mean (greedy exploitation). A pure-EI batch tends
            // to chase high-uncertainty corners of a 10-D cube forever; the
            // greedy half keeps refining the incumbent basin.
            // Scoring 512 candidates against a GP over a growing history
            // is the one surrogate-side hot spot; predictions are
            // independent, so fan them into the pool (collection stays in
            // candidate order, keeping the acquisition sort deterministic).
            let preds: Vec<(f64, f64)> = candidates
                .par_iter()
                .map(|c| surrogate.predict(c))
                .collect();
            let mut by_ei: Vec<usize> = (0..candidates.len()).collect();
            by_ei.sort_by(|&a, &b| {
                let ea = expected_improvement(preds[a].0, preds[a].1, best_y);
                let eb = expected_improvement(preds[b].0, preds[b].1, best_y);
                eb.partial_cmp(&ea).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut by_mean: Vec<usize> = (0..candidates.len()).collect();
            by_mean.sort_by(|&a, &b| {
                preds[a]
                    .0
                    .partial_cmp(&preds[b].0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut chosen: Vec<usize> = Vec::with_capacity(self.batch_size);
            let mut ei_it = by_ei.into_iter();
            let mut mean_it = by_mean.into_iter();
            while chosen.len() < self.batch_size {
                let next = if chosen.len().is_multiple_of(2) {
                    ei_it.next()
                } else {
                    mean_it.next()
                };
                match next {
                    Some(i) if !chosen.contains(&i) => chosen.push(i),
                    Some(_) => continue,
                    None => break,
                }
            }
            let batch: Vec<Vec<f64>> = chosen.iter().map(|&i| candidates[i].clone()).collect();

            match evaluator.eval_batch(&batch) {
                Some(losses) => {
                    let n = losses.len();
                    xs.extend_from_slice(&batch[..n]);
                    ys.extend(losses);
                }
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::objective::FnObjective;
    use crate::param::{Calibration, ParamKind, ParameterSpace};

    fn make_objective(
        dim: usize,
        f: impl Fn(&[f64]) -> f64 + Sync,
    ) -> FnObjective<impl Fn(&Calibration) -> f64 + Sync> {
        let mut space = ParameterSpace::new();
        for i in 0..dim {
            space.add(&format!("x{i}"), ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        }
        FnObjective::new(space, move |c: &Calibration| f(&c.values))
    }

    #[test]
    fn ei_prefers_low_mean_and_high_uncertainty() {
        // Lower mean wins at equal std.
        assert!(expected_improvement(0.2, 0.1, 1.0) > expected_improvement(0.8, 0.1, 1.0));
        // Higher std wins at equal mean above the incumbent.
        assert!(expected_improvement(1.5, 1.0, 1.0) > expected_improvement(1.5, 0.01, 1.0));
        // Zero std, mean above incumbent: no improvement expected.
        assert_eq!(expected_improvement(2.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn bo_gp_beats_random_on_smooth_function() {
        // Multi-modal-ish smooth landscape with global minimum near (0.7, 0.3).
        let f = |v: &[f64]| {
            (v[0] - 0.7).powi(2)
                + (v[1] - 0.3).powi(2)
                + 0.05 * ((8.0 * v[0]).sin() * (8.0 * v[1]).cos())
                + 0.05
        };
        let obj = make_objective(2, f);
        let budget = Budget::Evaluations(120);

        let ev_bo = Evaluator::new(&obj, budget);
        BayesianOpt::new(SurrogateKind::GaussianProcess).search(&ev_bo, 1);
        let bo = ev_bo.best().unwrap().0;

        let ev_rand = Evaluator::new(&obj, budget);
        crate::algorithms::RandomSearch::default().search(&ev_rand, 1);
        let rand = ev_rand.best().unwrap().0;

        assert!(
            bo <= rand * 1.25 + 1e-9,
            "BO {bo} should not lose badly to RAND {rand}"
        );
        assert!(bo < 0.06, "BO should approach the global optimum: {bo}");
    }

    #[test]
    fn all_surrogates_run_to_budget() {
        let obj = make_objective(3, |v| v.iter().map(|x| (x - 0.5).powi(2)).sum());
        for kind in SurrogateKind::ALL {
            let ev = Evaluator::new(&obj, Budget::Evaluations(60));
            BayesianOpt::new(kind).search(&ev, 2);
            assert_eq!(ev.evaluations(), 60, "{}", kind.name());
            assert!(ev.best().unwrap().0 < 0.3, "{}", kind.name());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let obj = make_objective(2, |v| (v[0] - 0.2).abs() + (v[1] - 0.9).abs());
        let run = |seed| {
            let ev = Evaluator::new(&obj, Budget::Evaluations(50));
            BayesianOpt::new(SurrogateKind::GaussianProcess).search(&ev, seed);
            ev.best().unwrap().0
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn non_finite_losses_never_reach_the_surrogate() {
        // Regression for the release-mode hole: NaN/inf history pairs
        // were guarded only by a debug_assert!, so optimized builds fit
        // the surrogate on poisoned data. The evaluator quarantines NaN
        // losses into +inf, and the fit now filters non-finite pairs —
        // this test exercises the whole path in every build profile.
        let obj = make_objective(2, |v| {
            if v[0] > 0.6 {
                f64::NAN // quarantined as NonFinite by the evaluator
            } else {
                (v[0] - 0.3).powi(2) + (v[1] - 0.3).powi(2)
            }
        });
        for kind in [SurrogateKind::GaussianProcess, SurrogateKind::Gbrt] {
            let ev = Evaluator::new(&obj, Budget::Evaluations(80));
            BayesianOpt::new(kind).search(&ev, 11);
            assert_eq!(ev.evaluations(), 80, "{}", kind.name());
            assert!(ev.eval_nonfinite() > 0, "{}", kind.name());
            let best = ev.best().expect("finite region must produce a best").0;
            assert!(best.is_finite(), "{}", kind.name());
            assert!(best < 0.2, "{}: best {best}", kind.name());
        }
    }

    #[test]
    fn all_failing_history_falls_back_to_random_exploration() {
        // If every early evaluation fails, the fit set is empty; the
        // search must keep exploring instead of panicking on argmin.
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let obj = make_objective(1, move |v| {
            // The first probes all fail; later ones succeed on half the
            // domain, so random exploration eventually finds a survivor.
            let n = calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < 20 || v[0] > 0.5 {
                f64::NAN
            } else {
                v[0]
            }
        });
        let ev = Evaluator::new(&obj, Budget::Evaluations(60));
        BayesianOpt::new(SurrogateKind::GaussianProcess).search(&ev, 4);
        assert_eq!(ev.evaluations(), 60);
        assert!(ev.best().is_some(), "a survivor must become the incumbent");
    }

    #[test]
    fn invalid_warm_points_are_ignored() {
        // Wrong-dimension and non-finite warm observations must leave
        // the trajectory bit-for-bit identical to a cold start.
        let obj = make_objective(2, |v| (v[0] - 0.2).abs() + (v[1] - 0.9).abs());
        let run = |warm: Vec<(Vec<f64>, f64)>| {
            let ev = Evaluator::new(&obj, Budget::Evaluations(40));
            BayesianOpt::new(SurrogateKind::GaussianProcess)
                .with_warm_start(warm)
                .search(&ev, 13);
            let (loss, unit, _) = ev.best().unwrap();
            (loss.to_bits(), unit)
        };
        let cold = run(Vec::new());
        let warm = run(vec![
            (vec![0.5], 0.1),                // wrong dimension
            (vec![0.2, 0.9], f64::NAN),      // non-finite loss
            (vec![0.2, 0.9], f64::INFINITY), // non-finite loss
        ]);
        assert_eq!(warm, cold);
    }

    #[test]
    fn warm_start_steers_but_never_consumes_budget() {
        // Warm observations at the optimum bias the surrogate toward it
        // without being evaluated: the budget is spent entirely on this
        // run's own proposals, and the incumbent is one of them.
        let f = |v: &[f64]| (v[0] - 0.7).powi(2) + (v[1] - 0.3).powi(2);
        let obj = make_objective(2, f);
        let warm: Vec<(Vec<f64>, f64)> = vec![
            (vec![0.7, 0.3], 0.0),
            (vec![0.68, 0.33], 0.0013),
            (vec![0.75, 0.28], 0.0029),
        ];
        let ev = Evaluator::new(&obj, Budget::Evaluations(40));
        BayesianOpt::new(SurrogateKind::GaussianProcess)
            .with_warm_start(warm)
            .search(&ev, 21);
        assert_eq!(ev.evaluations(), 40, "warm points must not consume budget");
        let (loss, unit, _) = ev.best().unwrap();
        // The reported best was really evaluated: its loss matches the
        // objective at the reported unit point.
        assert!((loss - f(&unit)).abs() < 1e-12);
        assert!(loss < 0.05, "warm-started search should home in: {loss}");
    }

    #[test]
    fn tiny_budget_smaller_than_initial_design_is_safe() {
        let obj = make_objective(2, |v| v[0] + v[1]);
        let ev = Evaluator::new(&obj, Budget::Evaluations(5));
        BayesianOpt::new(SurrogateKind::GaussianProcess).search(&ev, 0);
        assert_eq!(ev.evaluations(), 5);
        assert!(ev.best().is_some());
    }
}
