//! Grid search (paper's GRID): exhaustive search over a discretized grid
//! of the unit hypercube, doubling the resolution at each iteration.
//!
//! The paper omits GRID from its result tables because it "performed
//! poorly in preliminary experiments"; it is implemented here both for
//! completeness and so the `algorithms_ablation` bench can reproduce that
//! preliminary comparison.

use super::SearchAlgorithm;
use crate::budget::Evaluator;

/// Iteratively-refined exhaustive grid search.
#[derive(Clone, Debug)]
pub struct GridSearch {
    /// Points per parallel evaluation batch.
    pub batch_size: usize,
    /// Initial number of levels per dimension (doubled per iteration).
    pub initial_resolution: usize,
}

impl Default for GridSearch {
    /// Batch size scales with the thread pool so wide machines stay
    /// saturated. This cannot change the search trajectory under an
    /// evaluation-count budget: the grid is enumerated in a fixed order
    /// and the evaluated points are always a prefix of that enumeration,
    /// regardless of how they are batched.
    fn default() -> Self {
        Self {
            batch_size: 16.max(2 * rayon::current_num_threads()),
            initial_resolution: 2,
        }
    }
}

impl GridSearch {
    /// Grid coordinates for `level` of `resolution` levels: endpoints
    /// included (`0` and `1`), evenly spaced.
    fn coord(level: usize, resolution: usize) -> f64 {
        if resolution <= 1 {
            0.5
        } else {
            level as f64 / (resolution - 1) as f64
        }
    }
}

impl SearchAlgorithm for GridSearch {
    fn name(&self) -> &'static str {
        "GRID"
    }

    fn search(&self, evaluator: &Evaluator<'_>, _seed: u64) {
        let dim = evaluator.space().dim();
        let mut resolution = self.initial_resolution.max(2);
        loop {
            // Enumerate the full factorial grid in mixed-radix order,
            // streaming batches to the evaluator.
            let mut counter = vec![0usize; dim];
            let mut batch: Vec<Vec<f64>> = Vec::with_capacity(self.batch_size);
            'grid: loop {
                batch.push(
                    counter
                        .iter()
                        .map(|&l| Self::coord(l, resolution))
                        .collect(),
                );
                if batch.len() == self.batch_size {
                    if evaluator.eval_batch(&batch).is_none() {
                        return;
                    }
                    batch.clear();
                }
                // Increment the mixed-radix counter.
                for digit in counter.iter_mut() {
                    *digit += 1;
                    if *digit < resolution {
                        continue 'grid;
                    }
                    *digit = 0;
                }
                break;
            }
            if !batch.is_empty() && evaluator.eval_batch(&batch).is_none() {
                return;
            }
            if evaluator.exhausted() {
                return;
            }
            // Double the resolution for the next sweep.
            match resolution.checked_mul(2) {
                Some(r) => resolution = r,
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::objective::FnObjective;
    use crate::param::{Calibration, ParamKind, ParameterSpace};

    fn quadratic_1d(center: f64) -> FnObjective<impl Fn(&Calibration) -> f64 + Sync> {
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        FnObjective::new(space, move |c: &Calibration| (c.values[0] - center).powi(2))
    }

    #[test]
    fn refinement_converges_on_1d_quadratic() {
        let obj = quadratic_1d(0.3);
        let ev = Evaluator::new(&obj, Budget::Evaluations(200));
        GridSearch::default().search(&ev, 0);
        let (loss, _, calib) = ev.best().unwrap();
        assert!(loss < 1e-3, "loss {loss}");
        assert!(
            (calib.values[0] - 0.3).abs() < 0.05,
            "x {}",
            calib.values[0]
        );
    }

    #[test]
    fn first_sweep_hits_the_corners() {
        let space = ParameterSpace::new()
            .with("a", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
            .with("b", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        // Minimum at corner (1,1): the resolution-2 grid evaluates it.
        let obj = FnObjective::new(space, |c: &Calibration| {
            (c.values[0] - 1.0).abs() + (c.values[1] - 1.0).abs()
        });
        let ev = Evaluator::new(&obj, Budget::Evaluations(4));
        GridSearch::default().search(&ev, 0);
        let (loss, _, _) = ev.best().unwrap();
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn coord_spacing_is_even_with_endpoints() {
        assert_eq!(GridSearch::coord(0, 2), 0.0);
        assert_eq!(GridSearch::coord(1, 2), 1.0);
        assert_eq!(GridSearch::coord(1, 3), 0.5);
        assert_eq!(GridSearch::coord(0, 1), 0.5);
    }

    #[test]
    fn exhausts_budget_in_high_dimension() {
        let mut space = ParameterSpace::new();
        for i in 0..6 {
            space.add(&format!("x{i}"), ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        }
        let obj = FnObjective::new(space, |c: &Calibration| c.values.iter().sum());
        let ev = Evaluator::new(&obj, Budget::Evaluations(100));
        GridSearch::default().search(&ev, 0);
        assert_eq!(ev.evaluations(), 100);
    }
}
