//! Random search (paper's RAND): uniform sampling of the unit hypercube,
//! evaluated in parallel batches until the budget is exhausted.

use super::SearchAlgorithm;
use crate::budget::Evaluator;
use numeric::rng_from_seed;
use rand::Rng;

/// Uniform random search.
#[derive(Clone, Debug)]
pub struct RandomSearch {
    /// Points evaluated per parallel batch.
    pub batch_size: usize,
}

impl Default for RandomSearch {
    /// Batch size scales with the thread pool so wide machines stay
    /// saturated. This cannot change the search trajectory under an
    /// evaluation-count budget: the evaluated points are always a prefix
    /// of the seeded rng stream, regardless of how they are batched.
    fn default() -> Self {
        Self {
            batch_size: 16.max(2 * rayon::current_num_threads()),
        }
    }
}

impl SearchAlgorithm for RandomSearch {
    fn name(&self) -> &'static str {
        "RAND"
    }

    fn search(&self, evaluator: &Evaluator<'_>, seed: u64) {
        let dim = evaluator.space().dim();
        let mut rng = rng_from_seed(seed);
        while !evaluator.exhausted() {
            let batch: Vec<Vec<f64>> = (0..self.batch_size)
                .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
                .collect();
            if evaluator.eval_batch(&batch).is_none() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::objective::FnObjective;
    use crate::param::{Calibration, ParamKind, ParameterSpace};

    fn sphere(dim: usize) -> FnObjective<impl Fn(&Calibration) -> f64 + Sync> {
        let mut space = ParameterSpace::new();
        for i in 0..dim {
            space.add(
                &format!("x{i}"),
                ParamKind::Continuous { lo: -1.0, hi: 1.0 },
            );
        }
        FnObjective::new(space, |c: &Calibration| {
            c.values.iter().map(|v| v * v).sum()
        })
    }

    #[test]
    fn finds_a_reasonable_minimum_on_the_sphere() {
        let obj = sphere(2);
        let ev = Evaluator::new(&obj, Budget::Evaluations(400));
        RandomSearch::default().search(&ev, 1);
        let (loss, _, _) = ev.best().unwrap();
        assert!(
            loss < 0.1,
            "random search should get close on 2-D sphere: {loss}"
        );
        assert_eq!(ev.evaluations(), 400);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let obj = sphere(3);
        let run = |seed| {
            let ev = Evaluator::new(&obj, Budget::Evaluations(64));
            RandomSearch::default().search(&ev, seed);
            ev.best().unwrap().0
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn respects_budget_exactly() {
        let obj = sphere(2);
        let ev = Evaluator::new(&obj, Budget::Evaluations(33));
        RandomSearch { batch_size: 10 }.search(&ev, 0);
        assert_eq!(ev.evaluations(), 33);
    }
}
