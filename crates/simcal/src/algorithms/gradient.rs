//! Gradient descent with random restarts (paper's GRAD): at each
//! iteration, sample a random starting point and run a finite-difference
//! gradient descent from it until convergence, then restart.
//!
//! Like GRID, the paper omits GRAD from its result tables for poor
//! preliminary performance; it is here for completeness and ablations.
//!
//! GRAD routes every probe through [`Evaluator::eval`]/`eval_batch` and
//! therefore benefits doubly from the evaluator's memoization: line-search
//! probes that revisit the current iterate (a step that changes nothing
//! after discrete snapping) and finite-difference probes pinned to the
//! unit-cube boundary resolve from the cache without consuming budget.

use super::SearchAlgorithm;
use crate::budget::Evaluator;
use numeric::rng_from_seed;
use rand::Rng;

/// Random-restart finite-difference gradient descent in the unit cube.
#[derive(Clone, Debug)]
pub struct GradientDescent {
    /// Finite-difference step (unit-cube coordinates).
    pub fd_step: f64,
    /// Initial step size of a descent.
    pub initial_step: f64,
    /// A descent is converged once its step size shrinks below this.
    pub min_step: f64,
    /// Maximum descent iterations before a forced restart.
    pub max_iters_per_start: usize,
}

impl Default for GradientDescent {
    fn default() -> Self {
        Self {
            fd_step: 1e-3,
            initial_step: 0.1,
            min_step: 1e-4,
            max_iters_per_start: 60,
        }
    }
}

impl SearchAlgorithm for GradientDescent {
    fn name(&self) -> &'static str {
        "GRAD"
    }

    fn search(&self, evaluator: &Evaluator<'_>, seed: u64) {
        let dim = evaluator.space().dim();
        let mut rng = rng_from_seed(seed);
        'restart: while !evaluator.exhausted() {
            let mut x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
            let mut fx = match evaluator.eval(&x) {
                Some(v) => v,
                None => return,
            };
            let mut step = self.initial_step;
            for _ in 0..self.max_iters_per_start {
                // Forward-difference gradient, evaluated as one parallel batch.
                let probes: Vec<Vec<f64>> = (0..dim)
                    .map(|d| {
                        let mut p = x.clone();
                        p[d] = (p[d] + self.fd_step).min(1.0);
                        p
                    })
                    .collect();
                let fprobes = match evaluator.eval_batch(&probes) {
                    Some(v) if v.len() == dim => v,
                    _ => return,
                };
                let grad: Vec<f64> = (0..dim)
                    .map(|d| {
                        let h = probes[d][d] - x[d];
                        if h.abs() < f64::EPSILON {
                            0.0
                        } else {
                            (fprobes[d] - fx) / h
                        }
                    })
                    .collect();
                let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
                if gnorm < 1e-12 {
                    continue 'restart; // flat point: restart elsewhere
                }

                // Backtracking line search along -grad.
                let mut advanced = false;
                while step >= self.min_step {
                    let cand: Vec<f64> = x
                        .iter()
                        .zip(&grad)
                        .map(|(xi, gi)| (xi - step * gi / gnorm).clamp(0.0, 1.0))
                        .collect();
                    let fc = match evaluator.eval(&cand) {
                        Some(v) => v,
                        None => return,
                    };
                    if fc < fx {
                        x = cand;
                        fx = fc;
                        step *= 1.5;
                        advanced = true;
                        break;
                    }
                    step *= 0.5;
                }
                if !advanced {
                    continue 'restart; // converged: restart elsewhere
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::objective::FnObjective;
    use crate::param::{Calibration, ParamKind, ParameterSpace};

    fn shifted_sphere(dim: usize, center: f64) -> FnObjective<impl Fn(&Calibration) -> f64 + Sync> {
        let mut space = ParameterSpace::new();
        for i in 0..dim {
            space.add(&format!("x{i}"), ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        }
        FnObjective::new(space, move |c: &Calibration| {
            c.values.iter().map(|v| (v - center) * (v - center)).sum()
        })
    }

    #[test]
    fn descends_to_interior_minimum() {
        let obj = shifted_sphere(3, 0.7);
        let ev = Evaluator::new(&obj, Budget::Evaluations(600));
        GradientDescent::default().search(&ev, 3);
        let (loss, _, calib) = ev.best().unwrap();
        assert!(loss < 1e-3, "loss {loss}");
        for v in &calib.values {
            assert!((v - 0.7).abs() < 0.05, "coordinate {v}");
        }
    }

    #[test]
    fn clamps_to_boundary_minimum() {
        // Minimum at the boundary (all ones).
        let obj = shifted_sphere(2, 1.0);
        let ev = Evaluator::new(&obj, Budget::Evaluations(400));
        GradientDescent::default().search(&ev, 5);
        let (loss, _, _) = ev.best().unwrap();
        assert!(loss < 0.01, "loss {loss}");
    }

    #[test]
    fn is_deterministic_per_seed_and_respects_budget() {
        let obj = shifted_sphere(2, 0.4);
        let run = |seed| {
            let ev = Evaluator::new(&obj, Budget::Evaluations(100));
            GradientDescent::default().search(&ev, seed);
            (ev.evaluations(), ev.best().unwrap().0)
        };
        let (n1, l1) = run(11);
        let (n2, l2) = run(11);
        assert_eq!(n1, 100);
        assert_eq!((n1, l1), (n2, l2));
    }
}
