//! The objective a calibration minimizes, and the paper-style `Simulator`
//! abstraction used to assemble one from a simulator + ground-truth
//! dataset + loss function.
//!
//! The paper's framework (§4) "provides a `Simulator` class with a `run()`
//! method to be overridden for invoking the simulator", invoked once per
//! ground-truth data point; a user-provided loss function turns the
//! collected results into the scalar the optimizer minimizes. The Rust
//! equivalents are the [`Simulator`] trait and [`SimulationObjective`].

use crate::loss::Loss;
use crate::param::{Calibration, ParameterSpace};
use rayon::prelude::*;

/// A black-box function of a [`Calibration`] that the calibrator minimizes.
///
/// Implementations must be `Sync`: the calibrator evaluates batches of
/// points in parallel (the paper's framework parallelizes over cores with
/// `multiprocessing`; here it is a persistent work-stealing pool).
pub trait Objective: Sync {
    /// The domain of the calibration problem.
    fn space(&self) -> &ParameterSpace;

    /// The loss at `calibration` (lower is better). Must be deterministic
    /// for a given calibration.
    fn loss(&self, calibration: &Calibration) -> f64;

    /// Content address of this objective for the persistent loss cache
    /// ([`crate::cache`]). `None` (the default) keeps the objective out of
    /// the on-disk cache entirely — only objectives that declare what
    /// their losses depend on (simulator version, scenario set, loss
    /// definition) may share results across runs.
    fn cache_fingerprint(&self) -> Option<crate::cache::CacheFingerprint> {
        None
    }

    /// The loss at `calibration`, free to use the thread pool internally.
    ///
    /// Must return **bit-for-bit** the same value as [`Objective::loss`]:
    /// implementations may parallelize independent sub-evaluations but
    /// must reduce them in a fixed order. The default is the sequential
    /// loss; [`SimulationObjective`] overrides it to fan individual
    /// simulator invocations into the pool.
    fn par_loss(&self, calibration: &Calibration) -> f64 {
        self.loss(calibration)
    }

    /// Losses of a batch of calibrations, in input order, free to use the
    /// thread pool internally. Each returned value must equal the
    /// corresponding [`Objective::loss`] bit-for-bit.
    ///
    /// The default parallelizes across calibrations only (one sequential
    /// loss per pool item — the seed pipeline's shape);
    /// [`SimulationObjective`] overrides it to flatten the whole
    /// (calibration × scenario) product into one fan-out, so even a small
    /// batch over a large ground-truth dataset saturates the pool.
    fn par_loss_batch(&self, calibrations: &[Calibration]) -> Vec<f64> {
        calibrations.par_iter().map(|c| self.loss(c)).collect()
    }

    /// Like [`Objective::par_loss_batch`], but every per-point
    /// evaluation is isolated under [`crate::fault::guard`]: a panic in
    /// one point's simulation surfaces as that point's `Err(message)`
    /// instead of unwinding through the whole batch. Successful points
    /// must return bit-for-bit the same values as
    /// [`Objective::par_loss_batch`].
    ///
    /// The default guards each point's [`Objective::par_loss`];
    /// [`SimulationObjective`] overrides it to keep the flattened
    /// (calibration × scenario) fan-out while guarding each individual
    /// `Simulator::run` invocation, so a panic is attributed to exactly
    /// the point whose scenario raised it.
    fn try_par_loss_batch(&self, calibrations: &[Calibration]) -> Vec<Result<f64, String>> {
        calibrations
            .par_iter()
            .map(|c| crate::fault::guard(|| self.par_loss(c)))
            .collect()
    }
}

/// A use-case-specific simulator: invoked once per ground-truth scenario,
/// it produces whatever per-scenario result the loss function consumes
/// (for the workflow case study a [`crate::loss::ScenarioError`]; for the
/// MPI case study a row of explained-variance values).
///
/// The scenario type embeds the ground-truth observations, mirroring the
/// paper's setup where `run()` has access to the ground-truth data point it
/// is asked to reproduce.
pub trait Simulator: Sync {
    /// One ground-truth data point: a workload/platform configuration plus
    /// its observed execution metrics.
    type Scenario: Sync;
    /// Per-scenario result consumed by the loss function.
    type Output: Send;

    /// Simulate `scenario` under `calibration` and report the result.
    fn run(&self, scenario: &Self::Scenario, calibration: &Calibration) -> Self::Output;
}

/// [`Objective`] assembled from a simulator, a ground-truth dataset, and a
/// loss function — one simulator invocation per data point per evaluation,
/// exactly the cost structure the paper's time-budget discussion assumes.
pub struct SimulationObjective<'a, S: Simulator, L> {
    simulator: &'a S,
    dataset: &'a [S::Scenario],
    loss: L,
    space: ParameterSpace,
    fingerprint: Option<crate::cache::CacheFingerprint>,
}

impl<'a, S: Simulator, L> SimulationObjective<'a, S, L> {
    /// Assemble an objective.
    ///
    /// # Panics
    /// Panics if the dataset is empty (a calibration against nothing is
    /// meaningless and would silently return zero loss).
    pub fn new(
        simulator: &'a S,
        dataset: &'a [S::Scenario],
        loss: L,
        space: ParameterSpace,
    ) -> Self {
        assert!(!dataset.is_empty(), "calibration dataset must be non-empty");
        Self {
            simulator,
            dataset,
            loss,
            space,
            fingerprint: None,
        }
    }

    /// Declare this objective's content address, enabling the persistent
    /// loss cache ([`crate::cache`]) for its evaluations when a cache
    /// directory is active.
    pub fn with_cache_fingerprint(mut self, fingerprint: crate::cache::CacheFingerprint) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }

    /// Number of ground-truth data points (simulator invocations per loss
    /// evaluation).
    pub fn dataset_len(&self) -> usize {
        self.dataset.len()
    }
}

impl<'a, S, L> Objective for SimulationObjective<'a, S, L>
where
    S: Simulator,
    L: Loss<S::Output>,
{
    fn space(&self) -> &ParameterSpace {
        &self.space
    }

    fn cache_fingerprint(&self) -> Option<crate::cache::CacheFingerprint> {
        self.fingerprint
    }

    fn loss(&self, calibration: &Calibration) -> f64 {
        let outputs: Vec<S::Output> = self
            .dataset
            .iter()
            .map(|scenario| self.simulator.run(scenario, calibration))
            .collect();
        self.loss.aggregate(&outputs)
    }

    /// Scenario-level fan-out: every `Simulator::run` invocation becomes
    /// one pool item; outputs are collected in dataset order, so the
    /// aggregation sees exactly the sequence the sequential path builds.
    fn par_loss(&self, calibration: &Calibration) -> f64 {
        let outputs: Vec<S::Output> = self
            .dataset
            .par_iter()
            .map(|scenario| self.simulator.run(scenario, calibration))
            .collect();
        self.loss.aggregate(&outputs)
    }

    /// Two-level flattening: the whole (calibration × scenario) product
    /// is one fan-out of individual `Simulator::run` calls, so a batch of
    /// 4 proposals over a 100-scenario dataset schedules 400 independent
    /// pool items instead of 4. Outputs are regrouped per calibration in
    /// input order and aggregated sequentially, preserving bit-for-bit
    /// equality with [`Objective::loss`].
    fn par_loss_batch(&self, calibrations: &[Calibration]) -> Vec<f64> {
        let n_scenarios = self.dataset.len();
        let product: Vec<(usize, usize)> = (0..calibrations.len())
            .flat_map(|c| (0..n_scenarios).map(move |s| (c, s)))
            .collect();
        let outputs: Vec<S::Output> = product
            .par_iter()
            .map(|&(c, s)| self.simulator.run(&self.dataset[s], &calibrations[c]))
            .collect();
        outputs
            .chunks(n_scenarios)
            .map(|per_point| self.loss.aggregate(per_point))
            .collect()
    }

    /// Same flattened (calibration × scenario) fan-out as
    /// [`Objective::par_loss_batch`], with every `Simulator::run`
    /// invocation individually guarded: a panicking scenario fails only
    /// the calibration point it belongs to (first failing scenario in
    /// dataset order wins), while the other points aggregate exactly the
    /// output sequence the unguarded path builds.
    fn try_par_loss_batch(&self, calibrations: &[Calibration]) -> Vec<Result<f64, String>> {
        let n_scenarios = self.dataset.len();
        let product: Vec<(usize, usize)> = (0..calibrations.len())
            .flat_map(|c| (0..n_scenarios).map(move |s| (c, s)))
            .collect();
        let outputs: Vec<Result<S::Output, String>> = product
            .par_iter()
            .map(|&(c, s)| {
                crate::fault::guard(|| self.simulator.run(&self.dataset[s], &calibrations[c]))
            })
            .collect();
        let mut outputs = outputs.into_iter();
        (0..calibrations.len())
            .map(|_| {
                let mut per_point: Vec<S::Output> = Vec::with_capacity(n_scenarios);
                let mut failed: Option<String> = None;
                for _ in 0..n_scenarios {
                    match outputs.next().expect("one output per product item") {
                        Ok(output) => per_point.push(output),
                        Err(message) => {
                            failed.get_or_insert(message);
                        }
                    }
                }
                match failed {
                    None => crate::fault::guard(|| self.loss.aggregate(&per_point)),
                    Some(message) => Err(message),
                }
            })
            .collect()
    }
}

/// A closure-backed objective, handy for tests and for analytic
/// benchmarking of the optimizers themselves.
pub struct FnObjective<F> {
    space: ParameterSpace,
    f: F,
    fingerprint: Option<crate::cache::CacheFingerprint>,
}

impl<F: Fn(&Calibration) -> f64 + Sync> FnObjective<F> {
    /// Wrap `f` over `space`.
    pub fn new(space: ParameterSpace, f: F) -> Self {
        Self {
            space,
            f,
            fingerprint: None,
        }
    }

    /// Declare this objective's content address, enabling the persistent
    /// loss cache ([`crate::cache`]) for its evaluations when a cache
    /// directory is active.
    pub fn with_cache_fingerprint(mut self, fingerprint: crate::cache::CacheFingerprint) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }
}

impl<F: Fn(&Calibration) -> f64 + Sync> Objective for FnObjective<F> {
    fn space(&self) -> &ParameterSpace {
        &self.space
    }

    fn cache_fingerprint(&self) -> Option<crate::cache::CacheFingerprint> {
        self.fingerprint
    }

    fn loss(&self, calibration: &Calibration) -> f64 {
        (self.f)(calibration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Agg, ElementMix, ScenarioError, StructuredLoss};
    use crate::param::ParamKind;

    /// A toy simulator: the "ground truth" is a target value; the simulated
    /// value is the calibration's single parameter. Error is relative.
    struct Toy;
    impl Simulator for Toy {
        type Scenario = f64;
        type Output = ScenarioError;
        fn run(&self, scenario: &f64, calibration: &Calibration) -> ScenarioError {
            ScenarioError::scalar_only(crate::loss::relative_error(
                *scenario,
                calibration.values[0],
            ))
        }
    }

    fn space1() -> ParameterSpace {
        ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 100.0 })
    }

    #[test]
    fn simulation_objective_runs_per_data_point() {
        let dataset = vec![10.0, 20.0];
        let obj = SimulationObjective::new(
            &Toy,
            &dataset,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
            space1(),
        );
        assert_eq!(obj.dataset_len(), 2);
        // calibration 10: errors are 0 and 0.5 -> avg 0.25
        let loss = obj.loss(&Calibration::new(vec![10.0]));
        assert!((loss - 0.25).abs() < 1e-12);
        // perfect for neither, zero for the truth-weighted point
        assert_eq!(obj.loss(&Calibration::new(vec![20.0])).min(1.0), 0.5);
    }

    #[test]
    fn max_loss_takes_worst_scenario() {
        let dataset = vec![10.0, 20.0];
        let obj = SimulationObjective::new(
            &Toy,
            &dataset,
            StructuredLoss::new(Agg::Max, ElementMix::Ignore, "L2"),
            space1(),
        );
        let loss = obj.loss(&Calibration::new(vec![10.0]));
        assert!((loss - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_rejected() {
        let dataset: Vec<f64> = vec![];
        let _ = SimulationObjective::new(
            &Toy,
            &dataset,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
            space1(),
        );
    }

    #[test]
    fn try_batch_isolates_panicking_scenarios_per_point() {
        /// Panics only for one (calibration, scenario) combination, so the
        /// flattened fan-out must attribute the failure to exactly that
        /// calibration point.
        struct Flaky;
        impl Simulator for Flaky {
            type Scenario = f64;
            type Output = ScenarioError;
            fn run(&self, scenario: &f64, calibration: &Calibration) -> ScenarioError {
                if calibration.values[0] > 50.0 && *scenario == 20.0 {
                    panic!("scenario 20 exploded");
                }
                ScenarioError::scalar_only(crate::loss::relative_error(
                    *scenario,
                    calibration.values[0],
                ))
            }
        }
        let dataset = vec![10.0, 20.0];
        let obj = SimulationObjective::new(
            &Flaky,
            &dataset,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
            space1(),
        );
        let calibs = vec![
            Calibration::new(vec![10.0]),
            Calibration::new(vec![60.0]), // its scenario 20 panics
            Calibration::new(vec![20.0]),
        ];
        let results = obj.try_par_loss_batch(&calibs);
        assert_eq!(results.len(), 3);
        assert!(results[1]
            .as_ref()
            .unwrap_err()
            .contains("scenario 20 exploded"));
        // Surviving points equal the unguarded batch path bit-for-bit.
        let clean = obj.par_loss_batch(&[calibs[0].clone(), calibs[2].clone()]);
        assert_eq!(results[0].as_ref().unwrap().to_bits(), clean[0].to_bits());
        assert_eq!(results[2].as_ref().unwrap().to_bits(), clean[1].to_bits());
    }

    #[test]
    fn fn_objective_evaluates_closure() {
        let obj = FnObjective::new(space1(), |c: &Calibration| (c.values[0] - 3.0).powi(2));
        assert_eq!(obj.loss(&Calibration::new(vec![3.0])), 0.0);
        assert_eq!(obj.loss(&Calibration::new(vec![5.0])), 4.0);
        assert_eq!(obj.space().dim(), 1);
    }
}
