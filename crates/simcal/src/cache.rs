//! Persistent, content-addressed loss cache shared across calibration runs.
//!
//! The in-memory memoization of [`crate::budget::Evaluator`] dies with each
//! evaluator, so every sweep re-pays the full simulation bill even when it
//! re-calibrates an identical (objective, version, scenario set, seed)
//! combination. This module adds a durable layer behind that memo map: a
//! JSONL shard file per (fingerprint, seed) under a user-chosen directory,
//! keyed by the canonical bit pattern of the natural-unit calibration.
//!
//! Design contract:
//!
//! - **Content-addressed.** A shard is named by a 64-bit FNV-1a chain over
//!   (objective fingerprint, simulator version digest, scenario-set hash,
//!   seed); a record inside a shard is keyed by the calibration's
//!   [`canonical_key`]. Changing the simulator version (or the ground-truth
//!   dataset) changes the digest and therefore the shard — stale entries
//!   are never consulted, so invalidation is automatic.
//! - **Never fails a calibration.** Every I/O path retries transient
//!   errors with bounded backoff and then degrades to memory-only
//!   operation: a cache that cannot be read or written is diagnosed once
//!   (via `obs::diag!`) and silently skipped thereafter.
//! - **Torn tails heal.** Shards are append-only JSONL with the same
//!   lenient read discipline as the lodsel run ledger: a half-written
//!   final line (crash mid-append) is terminated on open, and unparsable
//!   lines are skipped rather than failing the load. Later records win on
//!   key collision.
//! - **Failures are cached too.** A quarantined evaluation (panic or
//!   non-finite loss) is persisted as a typed record so a warm run replays
//!   the quarantine without re-invoking the broken simulator.
//!
//! The cache location comes from [`install`] (programmatic, used by
//! `lodsel::run_sweep`'s `cache` config) or the `CALIB_CACHE` environment
//! variable; evaluators snapshot the active directory at construction, the
//! same discipline [`crate::fault`] uses for fault plans.

use crate::param::Calibration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical cache bits of one calibration component: `-0.0` folds into
/// `0.0` (they are equal calibrations and must share an entry), and a NaN
/// component yields `None` — NaN is not equal to itself, so a NaN point
/// has no meaningful identity and is never cached.
fn canonical_bits(v: f64) -> Option<u64> {
    if v.is_nan() {
        return None;
    }
    // `+0.0 == -0.0`, so this folds the negative zero; every other value
    // keeps its exact bit pattern.
    Some(if v == 0.0 {
        0.0f64.to_bits()
    } else {
        v.to_bits()
    })
}

/// Canonical cache key of a slice of natural-unit parameter values.
/// Returns `None` when any component is NaN (such a point is evaluated
/// uncached).
pub fn canonical_key_of(values: &[f64]) -> Option<Vec<u64>> {
    values.iter().map(|&v| canonical_bits(v)).collect()
}

/// Canonical cache key of a calibration — the shared key function used by
/// both the evaluator's in-memory memo map and the on-disk cache.
pub fn canonical_key(calib: &Calibration) -> Option<Vec<u64>> {
    canonical_key_of(&calib.values)
}

/// Content address of one calibration problem: what must match for a
/// cached loss to be valid. Each component is a 64-bit digest; the
/// [`CacheFingerprint::of`] constructor hashes human-readable identifiers,
/// but callers with structured digests (e.g. a version family's
/// fingerprint) can fill the fields directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheFingerprint {
    /// Digest of the objective definition (loss function + space).
    pub objective: u64,
    /// Digest of the simulator version being calibrated.
    pub version: u64,
    /// Digest of the ground-truth scenario set.
    pub scenarios: u64,
}

impl CacheFingerprint {
    /// Fingerprint from human-readable objective/version identifiers plus
    /// a structured scenario-set digest.
    pub fn of(objective: &str, version: &str, scenarios: u64) -> Self {
        Self {
            objective: fnv1a(objective.as_bytes()),
            version: fnv1a(version.as_bytes()),
            scenarios,
        }
    }

    /// The shard a calibration run with this fingerprint and `seed` reads
    /// and writes: an FNV-1a chain over the four components, so any
    /// difference in objective, version, scenario set, or seed lands in a
    /// different file.
    pub fn shard_id(&self, seed: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for part in [self.objective, self.version, self.scenarios, seed] {
            h ^= fnv1a(&part.to_le_bytes());
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Shard file path for `shard` under `dir`.
pub fn shard_path(dir: &Path, shard: u64) -> PathBuf {
    dir.join(format!("shard-{shard:016x}.jsonl"))
}

/// A persisted evaluation outcome. Struct variants only: the workspace's
/// serde stand-in derives struct/unit enum variants but not tuple ones.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CachedOutcome {
    /// The objective returned this finite loss.
    Loss {
        /// The loss value (bit-exact through the JSON round-trip).
        loss: f64,
    },
    /// The objective panicked; replayed as a quarantined failure.
    Panic {
        /// The panic payload rendered as a string.
        message: String,
    },
    /// The objective returned a non-finite loss; replayed as quarantined.
    NonFinite {
        /// Bit pattern ([`f64::to_bits`]) of the offending loss — stored
        /// as bits because JSON has no NaN/Infinity literal.
        loss_bits: u64,
    },
}

/// One JSONL line of a shard: the natural-unit calibration values and the
/// outcome of evaluating them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheRecord {
    /// Natural-unit parameter values (the key, pre-canonicalization).
    pub values: Vec<f64>,
    /// What evaluating them produced.
    pub outcome: CachedOutcome,
}

/// Transient-error retry backoff, mirroring the lodsel ledger discipline.
const RETRY_BACKOFF_MS: [u64; 3] = [1, 5, 20];

fn is_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Run `op`, retrying transient I/O errors with bounded backoff.
fn retry_transient<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) if is_transient(e.kind()) && attempt < RETRY_BACKOFF_MS.len() => {
                std::thread::sleep(std::time::Duration::from_millis(RETRY_BACKOFF_MS[attempt]));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One shard of the on-disk loss cache, bound to a single calibration
/// run's (fingerprint, seed). All I/O errors degrade to memory-only
/// operation; no method ever fails the caller.
pub struct DiskCache {
    path: PathBuf,
    entries: RwLock<HashMap<Vec<u64>, CachedOutcome>>,
    /// Append handle; `None` once the cache has permanently degraded to
    /// memory-only after an unrecoverable I/O error.
    file: Mutex<Option<File>>,
}

impl DiskCache {
    /// Open (creating if absent) the shard for `shard` under `dir`,
    /// loading every parsable record. A half-written final line is
    /// terminated so the next append starts clean; unparsable lines are
    /// skipped; records later in the file win on key collision. On
    /// persistent I/O failure the cache opens degraded (memory-only) and
    /// diagnoses the reason once — it never returns an error.
    pub fn open(dir: &Path, shard: u64) -> Self {
        let path = shard_path(dir, shard);
        let opened = retry_transient(|| {
            std::fs::create_dir_all(dir)?;
            OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&path)
        });
        let mut file = match opened {
            Ok(f) => Some(f),
            Err(e) => {
                obs::diag!(
                    "loss cache degraded to memory-only ({}): {e}",
                    path.display()
                );
                None
            }
        };
        let mut entries = HashMap::new();
        if let Some(f) = file.as_mut() {
            let mut text = String::new();
            match retry_transient(|| {
                text.clear();
                let mut f2 = f.try_clone()?;
                std::io::Seek::seek(&mut f2, std::io::SeekFrom::Start(0))?;
                f2.read_to_string(&mut text)?;
                Ok(())
            }) {
                Ok(()) => {
                    if !text.is_empty() && !text.ends_with('\n') {
                        // Torn tail from a crash mid-append: terminate it so
                        // the next append starts on a fresh line. Best
                        // effort — a failure here only risks one more torn
                        // line, which the lenient parse below skips anyway.
                        let _ = retry_transient(|| {
                            f.write_all(b"\n")?;
                            f.flush()
                        });
                    }
                    for line in text.lines().filter(|l| !l.trim().is_empty()) {
                        if let Ok(record) = serde_json::from_str::<CacheRecord>(line) {
                            if let Some(key) = canonical_key_of(&record.values) {
                                entries.insert(key, record.outcome);
                            }
                        }
                    }
                }
                Err(e) => {
                    obs::diag!(
                        "loss cache degraded to memory-only ({}): {e}",
                        path.display()
                    );
                    file = None;
                }
            }
        }
        Self {
            path,
            entries: RwLock::new(entries),
            file: Mutex::new(file),
        }
    }

    /// The cached outcome at `key`, if any.
    pub fn lookup(&self, key: &[u64]) -> Option<CachedOutcome> {
        self.entries.read().unwrap().get(key).cloned()
    }

    /// Record `outcome` for the calibration `values`, both in memory and
    /// (best-effort) appended to the shard file. A NaN-component key, or
    /// an outcome identical to the one already stored, is skipped. A
    /// persistent append failure degrades the cache to memory-only.
    pub fn store(&self, values: &[f64], outcome: CachedOutcome) {
        let Some(key) = canonical_key_of(values) else {
            return;
        };
        {
            let mut entries = self.entries.write().unwrap();
            if entries.get(&key) == Some(&outcome) {
                return;
            }
            entries.insert(key, outcome.clone());
        }
        let record = CacheRecord {
            values: values.to_vec(),
            outcome,
        };
        let line = serde_json::to_string(&record).expect("cache record serializes");
        let mut file = self.file.lock().unwrap();
        if let Some(f) = file.as_mut() {
            // `dirty` guards against a partial write followed by a
            // transient success: start the retry on a fresh line so the
            // record is never glued to its own torn prefix.
            let mut dirty = false;
            let result = retry_transient(|| {
                if dirty {
                    f.write_all(b"\n")?;
                }
                dirty = true;
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
                f.flush()
            });
            if let Err(e) = result {
                obs::diag!(
                    "loss cache degraded to memory-only ({}): {e}",
                    self.path.display()
                );
                *file = None;
            }
        }
    }

    /// Number of cached entries (in memory).
    pub fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the cache has fallen back to memory-only operation.
    pub fn degraded(&self) -> bool {
        self.file.lock().unwrap().is_none()
    }

    /// The shard file this cache reads and appends.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Finite cached losses from the shard for (`fingerprint`, `seed`) under
/// `dir`, as `(natural values, loss)` pairs for warm-starting a new
/// calibration's surrogate. Pairs are deduplicated by canonical key
/// (later records win, first-seen order preserved); quarantined and
/// non-finite records are excluded. Missing or unreadable shards yield an
/// empty list.
pub fn load_finite_observations(
    dir: &Path,
    fingerprint: CacheFingerprint,
    seed: u64,
) -> Vec<(Vec<f64>, f64)> {
    let path = shard_path(dir, fingerprint.shard_id(seed));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut order: Vec<Vec<u64>> = Vec::new();
    let mut by_key: HashMap<Vec<u64>, (Vec<f64>, f64)> = HashMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(record) = serde_json::from_str::<CacheRecord>(line) else {
            continue;
        };
        let Some(key) = canonical_key_of(&record.values) else {
            continue;
        };
        match record.outcome {
            CachedOutcome::Loss { loss } if loss.is_finite() => {
                if by_key.insert(key.clone(), (record.values, loss)).is_none() {
                    order.push(key);
                }
            }
            // A later quarantine supersedes an earlier finite loss for
            // the same point: drop it from the warm-start set.
            _ => {
                if by_key.remove(&key).is_some() {
                    order.retain(|k| *k != key);
                }
            }
        }
    }
    order
        .into_iter()
        .filter_map(|k| by_key.remove(&k))
        .collect()
}

/// The programmatically installed cache directory, if any. Overrides the
/// environment.
static DIR: RwLock<Option<Arc<PathBuf>>> = RwLock::new(None);

/// The `CALIB_CACHE` environment directory, read once per process.
static ENV_DIR: OnceLock<Option<Arc<PathBuf>>> = OnceLock::new();

/// Install `dir` as the process-global cache directory; evaluators
/// constructed afterwards snapshot it. Replaces any previously installed
/// directory and overrides `CALIB_CACHE`.
pub fn install(dir: impl Into<PathBuf>) {
    *DIR.write().unwrap() = Some(Arc::new(dir.into()));
}

/// Remove the programmatically installed cache directory (the
/// `CALIB_CACHE` environment directory, if set, becomes visible again).
pub fn uninstall() {
    *DIR.write().unwrap() = None;
}

/// The programmatically installed cache directory, ignoring the
/// environment — lets scoped installers (e.g. a sweep configured with its
/// own cache) save and restore whatever was active before them.
pub fn installed() -> Option<Arc<PathBuf>> {
    DIR.read().unwrap().clone()
}

/// The currently active cache directory: the installed one, else
/// `CALIB_CACHE`, else `None` (caching disabled). An empty `CALIB_CACHE`
/// counts as unset.
pub fn current() -> Option<Arc<PathBuf>> {
    if let Some(dir) = DIR.read().unwrap().clone() {
        return Some(dir);
    }
    ENV_DIR
        .get_or_init(|| {
            let text = std::env::var("CALIB_CACHE").ok()?;
            let trimmed = text.trim();
            (!trimmed.is_empty()).then(|| Arc::new(PathBuf::from(trimmed)))
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Collision-free temp directory (tests run concurrently).
    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("simcal-cache-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn canonical_key_folds_signed_zero_and_rejects_nan() {
        assert_eq!(
            canonical_key_of(&[0.0, 1.5]),
            canonical_key_of(&[-0.0, 1.5])
        );
        assert_ne!(canonical_key_of(&[0.5]), canonical_key_of(&[-0.5]));
        assert_eq!(canonical_key_of(&[f64::NAN]), None);
        assert_eq!(canonical_key_of(&[1.0, f64::NAN, 2.0]), None);
        // Infinities are orderable and self-equal: they keep an identity.
        assert!(canonical_key_of(&[f64::INFINITY]).is_some());
    }

    #[test]
    fn fingerprint_components_all_move_the_shard() {
        let base = CacheFingerprint::of("obj", "v1", 42);
        assert_ne!(
            base.shard_id(0),
            CacheFingerprint::of("obj2", "v1", 42).shard_id(0)
        );
        assert_ne!(
            base.shard_id(0),
            CacheFingerprint::of("obj", "v2", 42).shard_id(0)
        );
        assert_ne!(
            base.shard_id(0),
            CacheFingerprint::of("obj", "v1", 43).shard_id(0)
        );
        assert_ne!(base.shard_id(0), base.shard_id(1));
        assert_eq!(
            base.shard_id(7),
            CacheFingerprint::of("obj", "v1", 42).shard_id(7)
        );
    }

    #[test]
    fn outcomes_roundtrip_through_the_shard_file() {
        let dir = tmp_dir("roundtrip");
        let cache = DiskCache::open(&dir, 0xabc);
        assert!(cache.is_empty());
        cache.store(&[1.5, -0.0], CachedOutcome::Loss { loss: 1.0 / 3.0 });
        cache.store(
            &[2.5, 0.25],
            CachedOutcome::Panic {
                message: "simulator \"diverged\"\n badly".into(),
            },
        );
        cache.store(
            &[3.5, 0.5],
            CachedOutcome::NonFinite {
                loss_bits: f64::NAN.to_bits(),
            },
        );
        drop(cache);
        let back = DiskCache::open(&dir, 0xabc);
        assert_eq!(back.len(), 3);
        // The signed-zero component was canonicalized: +0.0 looks it up.
        let key = canonical_key_of(&[1.5, 0.0]).unwrap();
        match back.lookup(&key) {
            Some(CachedOutcome::Loss { loss }) => {
                assert_eq!(loss.to_bits(), (1.0f64 / 3.0).to_bits());
            }
            other => panic!("expected Loss, got {other:?}"),
        }
        match back.lookup(&canonical_key_of(&[2.5, 0.25]).unwrap()) {
            Some(CachedOutcome::Panic { message }) => {
                assert!(message.contains("simulator \"diverged\""));
            }
            other => panic!("expected Panic, got {other:?}"),
        }
        match back.lookup(&canonical_key_of(&[3.5, 0.5]).unwrap()) {
            Some(CachedOutcome::NonFinite { loss_bits }) => {
                assert!(f64::from_bits(loss_bits).is_nan())
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        // Other shards in the same directory are independent.
        assert!(DiskCache::open(&dir, 0xdef).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nan_keys_and_duplicate_outcomes_are_not_persisted() {
        let dir = tmp_dir("nankey");
        let cache = DiskCache::open(&dir, 1);
        cache.store(&[f64::NAN], CachedOutcome::Loss { loss: 1.0 });
        assert!(cache.is_empty());
        cache.store(&[1.0], CachedOutcome::Loss { loss: 2.0 });
        cache.store(&[1.0], CachedOutcome::Loss { loss: 2.0 });
        let text = std::fs::read_to_string(cache.path()).unwrap();
        assert_eq!(text.lines().count(), 1, "duplicate store appends nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_healed_and_skipped() {
        let dir = tmp_dir("torn");
        {
            let cache = DiskCache::open(&dir, 2);
            cache.store(&[1.0], CachedOutcome::Loss { loss: 10.0 });
        }
        // Simulate a crash mid-append: a half-written record with no
        // trailing newline.
        let path = shard_path(&dir, 2);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"values\":[2.0],\"outcome\":{\"Lo").unwrap();
        drop(f);
        let cache = DiskCache::open(&dir, 2);
        assert_eq!(cache.len(), 1, "the torn record is skipped");
        assert!(cache.lookup(&canonical_key_of(&[1.0]).unwrap()).is_some());
        // The tail was terminated, so a new append starts a clean line
        // that survives the next open.
        cache.store(&[3.0], CachedOutcome::Loss { loss: 30.0 });
        drop(cache);
        let back = DiskCache::open(&dir, 2);
        assert_eq!(back.len(), 2);
        assert!(back.lookup(&canonical_key_of(&[3.0]).unwrap()).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_are_skipped_and_later_records_win() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = shard_path(&dir, 3);
        std::fs::write(
            &path,
            concat!(
                "{\"values\":[1.0],\"outcome\":{\"Loss\":{\"loss\":1.0}}}\n",
                "this is not json\n",
                "{\"values\":[1.0]}\n",
                "{\"values\":[1.0],\"outcome\":{\"Loss\":{\"loss\":2.0}}}\n",
            ),
        )
        .unwrap();
        let cache = DiskCache::open(&dir, 3);
        assert_eq!(cache.len(), 1);
        match cache.lookup(&canonical_key_of(&[1.0]).unwrap()) {
            Some(CachedOutcome::Loss { loss }) => assert_eq!(loss, 2.0, "later record wins"),
            other => panic!("expected Loss, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unopenable_directory_degrades_to_memory_only() {
        // Use a *file* where the cache expects a directory: create_dir_all
        // fails persistently, so the cache must degrade, not panic.
        let dir = tmp_dir("degraded");
        std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
        std::fs::write(&dir, b"i am a file").unwrap();
        let cache = DiskCache::open(&dir, 4);
        assert!(cache.degraded());
        // Memory-only operation still works.
        cache.store(&[1.0], CachedOutcome::Loss { loss: 5.0 });
        assert_eq!(
            cache.lookup(&canonical_key_of(&[1.0]).unwrap()),
            Some(CachedOutcome::Loss { loss: 5.0 })
        );
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn finite_observations_exclude_failures_and_dedup() {
        let dir = tmp_dir("warm");
        let fp = CacheFingerprint::of("obj", "v1", 9);
        let seed = 77;
        {
            let cache = DiskCache::open(&dir, fp.shard_id(seed));
            cache.store(&[1.0], CachedOutcome::Loss { loss: 10.0 });
            cache.store(
                &[2.0],
                CachedOutcome::Panic {
                    message: "boom".into(),
                },
            );
            cache.store(
                &[3.0],
                CachedOutcome::NonFinite {
                    loss_bits: f64::INFINITY.to_bits(),
                },
            );
            cache.store(&[4.0], CachedOutcome::Loss { loss: 40.0 });
        }
        // Append a superseding record for [1.0] directly (store() dedups
        // identical outcomes, and a fresh DiskCache would consult its map).
        {
            let path = shard_path(&dir, fp.shard_id(seed));
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"values\":[1.0],\"outcome\":{\"Loss\":{\"loss\":11.0}}}\n")
                .unwrap();
        }
        let obs = load_finite_observations(&dir, fp, seed);
        assert_eq!(
            obs,
            vec![(vec![1.0], 11.0), (vec![4.0], 40.0)],
            "failures excluded, later finite record wins, order preserved"
        );
        assert!(load_finite_observations(&dir, fp, seed + 1).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
