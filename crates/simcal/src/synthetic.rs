//! Synthetic benchmarking for loss/algorithm selection (paper §3).
//!
//! To decide which loss function and optimization algorithm to use, the
//! paper picks *arbitrary* parameter values θ\*, generates synthetic
//! ground-truth data by simulating every workload/platform configuration
//! at θ\*, calibrates against that synthetic data with each loss/algorithm
//! pair, and reports the **calibration error**: the relative L1 distance
//! between each computed calibration and θ\*, which is known to be the
//! best calibration by design. The pair with the lowest calibration error
//! wins (Tables 3 and 5).

use crate::calibrate::{CalibrationResult, Calibrator};
use crate::objective::Objective;
use crate::param::{Calibration, ParameterSpace};

/// The paper's calibration-error metric: `100 x` the relative L1 distance
/// between a computed calibration and the reference calibration θ\*.
///
/// The distance is computed over *range-normalized* coordinates (each
/// parameter mapped to `[0, 1]` by its user-specified range) so that
/// parameters with exponential ranges spanning six orders of magnitude do
/// not drown out everything else — without normalization a single
/// bandwidth off by `2^15` would dominate the sum no matter how good the
/// other nine parameters are.
pub fn calibration_error(
    space: &ParameterSpace,
    found: &Calibration,
    reference: &Calibration,
) -> f64 {
    let fu = space.normalize(found);
    let ru = space.normalize(reference);
    100.0 * numeric::relative_l1_distance(&fu, &ru)
}

/// One cell of a synthetic-benchmarking table.
#[derive(Clone, Debug)]
pub struct SyntheticCell {
    /// Report name of the algorithm (e.g. `"BO-GP"`).
    pub algorithm: String,
    /// Report name of the loss function (e.g. `"L1"`).
    pub loss_name: String,
    /// Relative L1 distance (x100) from the known best calibration.
    pub calibration_error: f64,
    /// The full calibration result (loss value, trace, ...).
    pub result: CalibrationResult,
}

/// Run synthetic benchmarking over a grid of (algorithm, loss) pairs.
///
/// `objectives` supplies, for each loss function under test, an objective
/// whose ground truth was generated *by the simulator itself* at the
/// reference calibration — so the reference is the known best calibration.
/// Each objective is calibrated with each calibrator; every cell reports
/// the calibration error against `reference`.
pub fn synthetic_benchmark<O: Objective>(
    calibrators: &[(String, Calibrator)],
    objectives: &[(String, O)],
    reference: &Calibration,
) -> Vec<SyntheticCell> {
    let mut cells = Vec::with_capacity(calibrators.len() * objectives.len());
    for (alg_name, calibrator) in calibrators {
        for (loss_name, objective) in objectives {
            let result = calibrator.calibrate(objective);
            cells.push(SyntheticCell {
                algorithm: alg_name.clone(),
                loss_name: loss_name.clone(),
                calibration_error: calibration_error(
                    objective.space(),
                    &result.calibration,
                    reference,
                ),
                result,
            });
        }
    }
    cells
}

/// Pick the `(algorithm, loss)` pair with the lowest calibration error.
///
/// Cells with a non-finite calibration error (a degraded-mode sweep can
/// record NaN cells) never win while any finite cell exists: `min_by`
/// with `partial_cmp(..).unwrap_or(Equal)` made the winner depend on
/// where the NaN sat in the slice, so the comparison now uses
/// [`f64::total_cmp`] over the finite cells first, falling back to the
/// full slice (still totally ordered) only when *no* cell is finite.
pub fn best_pair(cells: &[SyntheticCell]) -> Option<&SyntheticCell> {
    let by_error = |a: &&SyntheticCell, b: &&SyntheticCell| {
        a.calibration_error.total_cmp(&b.calibration_error)
    };
    cells
        .iter()
        .filter(|c| c.calibration_error.is_finite())
        .min_by(by_error)
        .or_else(|| cells.iter().min_by(by_error))
}

/// Reference-calibration helper: the midpoint of every parameter's range
/// (in unit space), a reasonable "arbitrary" θ\* for synthetic
/// benchmarking that is guaranteed to be in-range.
pub fn midpoint_reference(space: &ParameterSpace) -> Calibration {
    space.denormalize(&vec![0.5; space.dim()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use crate::budget::Budget;
    use crate::objective::FnObjective;
    use crate::param::ParamKind;

    fn space() -> ParameterSpace {
        ParameterSpace::new()
            .with("p", ParamKind::Continuous { lo: 0.0, hi: 10.0 })
            .with("q", ParamKind::Continuous { lo: 0.0, hi: 10.0 })
    }

    #[test]
    fn calibration_error_zero_iff_exact() {
        let s = space();
        let a = Calibration::new(vec![1.0, 2.0]);
        assert_eq!(calibration_error(&s, &a, &a), 0.0);
        // Moving one parameter from 1.0 to 2.0 over a [0,10] range is a
        // 0.1 -> 0.2 normalized move: relative distance 1.0, x100 = 100.
        let b = Calibration::new(vec![2.0, 2.0]);
        assert!((calibration_error(&s, &b, &a) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_error_is_range_normalized() {
        // An exponential parameter off by one binade contributes the same
        // as a linear parameter off by 1/20 of its range.
        let s = ParameterSpace::new()
            .with(
                "bw",
                ParamKind::Exponential {
                    lo_exp: 20.0,
                    hi_exp: 40.0,
                },
            )
            .with("lat", ParamKind::Continuous { lo: 0.0, hi: 20.0 });
        let reference = s.calibration_from_pairs(&[("bw", 2f64.powi(30)), ("lat", 10.0)]);
        let off_bw = s.calibration_from_pairs(&[("bw", 2f64.powi(31)), ("lat", 10.0)]);
        let off_lat = s.calibration_from_pairs(&[("bw", 2f64.powi(30)), ("lat", 11.0)]);
        let e_bw = calibration_error(&s, &off_bw, &reference);
        let e_lat = calibration_error(&s, &off_lat, &reference);
        assert!((e_bw - e_lat).abs() < 1e-9, "{e_bw} vs {e_lat}");
    }

    #[test]
    fn synthetic_benchmark_recovers_reference_on_easy_objective() {
        let reference = Calibration::new(vec![3.0, 7.0]);
        let r = reference.clone();
        // Synthetic objective: distance to the reference (the simulator
        // "generated" ground truth at the reference, so loss is 0 there).
        let objective = FnObjective::new(space(), move |c: &Calibration| {
            c.values
                .iter()
                .zip(&r.values)
                .map(|(a, b)| (a - b).abs())
                .sum()
        });
        let calibrators = vec![
            (
                "BO-GP".to_string(),
                Calibrator {
                    algorithm: AlgorithmKind::BoGp,
                    budget: Budget::Evaluations(120),
                    seed: 3,
                },
            ),
            (
                "RAND".to_string(),
                Calibrator {
                    algorithm: AlgorithmKind::Random,
                    budget: Budget::Evaluations(120),
                    seed: 3,
                },
            ),
        ];
        let objectives = vec![("L1".to_string(), objective)];
        let cells = synthetic_benchmark(&calibrators, &objectives, &reference);
        assert_eq!(cells.len(), 2);
        let best = best_pair(&cells).unwrap();
        assert!(
            best.calibration_error < 30.0,
            "error {}",
            best.calibration_error
        );
        // Every cell carries a consistent result.
        for c in &cells {
            assert!(c.result.loss.is_finite());
            assert!(c.calibration_error >= 0.0);
        }
    }

    #[test]
    fn midpoint_reference_is_in_range() {
        let s = space();
        let m = midpoint_reference(&s);
        assert_eq!(m.values, vec![5.0, 5.0]);
    }

    #[test]
    fn best_pair_of_empty_is_none() {
        assert!(best_pair(&[]).is_none());
    }

    #[test]
    fn best_pair_ignores_nan_cells_regardless_of_position() {
        // Regression: `partial_cmp(..).unwrap_or(Equal)` made a NaN cell
        // absorb the comparison, so the winner depended on where the NaN
        // sat in the slice.
        let objective = FnObjective::new(space(), |c: &Calibration| c.values[0]);
        let result = Calibrator::bo_gp(Budget::Evaluations(4), 1).calibrate(&objective);
        let cell = |name: &str, err: f64| SyntheticCell {
            algorithm: name.to_string(),
            loss_name: "L1".to_string(),
            calibration_error: err,
            result: result.clone(),
        };
        let cells = vec![
            cell("nan", f64::NAN),
            cell("inf", f64::INFINITY),
            cell("good", 12.5),
            cell("best", 3.0),
        ];
        for rot in 0..cells.len() {
            let mut rotated = cells.clone();
            rotated.rotate_left(rot);
            let winner = best_pair(&rotated).unwrap();
            assert_eq!(winner.algorithm, "best", "rotation {rot}");
        }
        // With no finite cell at all the pick is still deterministic
        // (total order: inf sorts below NaN) instead of positional.
        let all_bad = vec![cell("nan", f64::NAN), cell("inf", f64::INFINITY)];
        assert_eq!(best_pair(&all_bad).unwrap().algorithm, "inf");
        let flipped = vec![cell("inf", f64::INFINITY), cell("nan", f64::NAN)];
        assert_eq!(best_pair(&flipped).unwrap().algorithm, "inf");
    }
}
