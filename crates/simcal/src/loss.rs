//! Loss functions quantifying the discrepancy between ground-truth and
//! simulated executions (paper §3, §5.3.2, §6.3.2).
//!
//! The paper's two case studies use two structurally different families:
//!
//! - **Structured losses** (case study #1): each scenario yields a scalar
//!   error (the makespan error `e_i`) plus per-element errors (the task
//!   execution-time errors `e_{i,j}`). [`StructuredLoss`] composes them as
//!   `outer_i(e_i [+ mix_j(e_{i,j})])`, which covers the paper's
//!   L1–L6 exactly.
//! - **Matrix losses** (case study #2): each scenario (benchmark) yields a
//!   row of explained-variance values over message sizes; [`MatrixLoss`]
//!   composes `outer_i(inner_j(ev_{i,j}))`, covering the paper's L1–L4.

use serde::{Deserialize, Serialize};

/// A user-provided loss function turning per-scenario simulation results
/// into the scalar the calibrator minimizes.
pub trait Loss<O>: Sync {
    /// Aggregate per-scenario results into a scalar loss (lower is better).
    fn aggregate(&self, per_scenario: &[O]) -> f64;

    /// Short identifier for reports (e.g. `"L1"`).
    fn name(&self) -> &str;
}

/// Average or maximum — the two aggregation operators the paper composes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Agg {
    /// Arithmetic mean over the aggregated values.
    Avg,
    /// Maximum over the aggregated values.
    Max,
}

impl Agg {
    /// Apply the operator; empty input yields `0.0` for `Avg` and
    /// `f64::NEG_INFINITY`-guarded `0.0` for `Max` (an empty scenario set
    /// carries no error signal).
    pub fn apply(self, xs: impl Iterator<Item = f64>) -> f64 {
        match self {
            Agg::Avg => {
                let mut sum = 0.0;
                let mut n = 0usize;
                for x in xs {
                    sum += x;
                    n += 1;
                }
                if n == 0 {
                    0.0
                } else {
                    sum / n as f64
                }
            }
            Agg::Max => xs.fold(f64::NEG_INFINITY, f64::max).max(0.0),
        }
    }
}

/// How per-element errors enter a scenario's contribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElementMix {
    /// Use the scalar error alone (paper's L1, L2).
    Ignore,
    /// Add the *average* per-element error (paper's L3, L4).
    AddAvg,
    /// Add the *maximum* per-element error (paper's L5, L6).
    AddMax,
}

/// Per-scenario structured simulation error: a scalar plus per-element
/// errors. For case study #1 the scalar is the relative makespan error and
/// the elements are relative per-task execution-time errors.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioError {
    /// Scalar error of the scenario (e.g. `|m - m̂| / m`).
    pub scalar: f64,
    /// Per-element errors (e.g. per-task time errors).
    pub elements: Vec<f64>,
}

impl ScenarioError {
    /// A scenario error with no per-element component.
    pub fn scalar_only(scalar: f64) -> Self {
        Self {
            scalar,
            elements: Vec::new(),
        }
    }
}

/// `outer_i( e_i  ⊕  mix_j(e_{i,j}) )` — the family covering the paper's
/// workflow losses L1–L6 (§5.3.2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StructuredLoss {
    /// Aggregation across scenarios.
    pub outer: Agg,
    /// Contribution of per-element errors within a scenario.
    pub mix: ElementMix,
    name: String,
}

impl StructuredLoss {
    /// Build with an explicit report name.
    pub fn new(outer: Agg, mix: ElementMix, name: &str) -> Self {
        Self {
            outer,
            mix,
            name: name.to_string(),
        }
    }

    /// The paper's six workflow loss functions, in order L1..L6.
    pub fn paper_set() -> Vec<StructuredLoss> {
        vec![
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
            StructuredLoss::new(Agg::Max, ElementMix::Ignore, "L2"),
            StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3"),
            StructuredLoss::new(Agg::Max, ElementMix::AddAvg, "L4"),
            StructuredLoss::new(Agg::Avg, ElementMix::AddMax, "L5"),
            StructuredLoss::new(Agg::Max, ElementMix::AddMax, "L6"),
        ]
    }

    fn scenario_term(&self, s: &ScenarioError) -> f64 {
        let element_term = match self.mix {
            ElementMix::Ignore => 0.0,
            ElementMix::AddAvg => Agg::Avg.apply(s.elements.iter().copied()),
            ElementMix::AddMax => {
                if s.elements.is_empty() {
                    0.0
                } else {
                    Agg::Max.apply(s.elements.iter().copied())
                }
            }
        };
        s.scalar + element_term
    }
}

impl Loss<ScenarioError> for StructuredLoss {
    fn aggregate(&self, per_scenario: &[ScenarioError]) -> f64 {
        self.outer
            .apply(per_scenario.iter().map(|s| self.scenario_term(s)))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// `outer_i( inner_j( v_{i,j} ) )` over a per-scenario row of values — the
/// family covering the paper's MPI losses L1–L4 (§6.3.2), where `v_{i,j}`
/// is the explained variance of benchmark `i` at message size `j`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatrixLoss {
    /// Aggregation across scenarios (benchmarks).
    pub outer: Agg,
    /// Aggregation within a scenario (message sizes).
    pub inner: Agg,
    name: String,
}

impl MatrixLoss {
    /// Build with an explicit report name.
    pub fn new(outer: Agg, inner: Agg, name: &str) -> Self {
        Self {
            outer,
            inner,
            name: name.to_string(),
        }
    }

    /// The paper's four MPI loss functions, in order L1..L4.
    pub fn paper_set() -> Vec<MatrixLoss> {
        vec![
            MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"),
            MatrixLoss::new(Agg::Avg, Agg::Max, "L2"),
            MatrixLoss::new(Agg::Max, Agg::Avg, "L3"),
            MatrixLoss::new(Agg::Max, Agg::Max, "L4"),
        ]
    }
}

impl Loss<Vec<f64>> for MatrixLoss {
    fn aggregate(&self, per_scenario: &[Vec<f64>]) -> f64 {
        self.outer.apply(
            per_scenario
                .iter()
                .map(|row| self.inner.apply(row.iter().copied())),
        )
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Relative error `|truth - sim| / |truth|`, guarded against a zero truth.
pub fn relative_error(truth: f64, sim: f64) -> f64 {
    (truth - sim).abs() / truth.abs().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(scalar: f64, elements: &[f64]) -> ScenarioError {
        ScenarioError {
            scalar,
            elements: elements.to_vec(),
        }
    }

    #[test]
    fn agg_avg_and_max() {
        assert_eq!(Agg::Avg.apply([1.0, 2.0, 3.0].into_iter()), 2.0);
        assert_eq!(Agg::Max.apply([1.0, 5.0, 3.0].into_iter()), 5.0);
        assert_eq!(Agg::Avg.apply(std::iter::empty()), 0.0);
        assert_eq!(Agg::Max.apply(std::iter::empty()), 0.0);
    }

    #[test]
    fn paper_l1_is_average_makespan_error() {
        let l1 = &StructuredLoss::paper_set()[0];
        let data = [s(0.1, &[9.0, 9.0]), s(0.3, &[9.0])];
        assert!((l1.aggregate(&data) - 0.2).abs() < 1e-12);
        assert_eq!(l1.name(), "L1");
    }

    #[test]
    fn paper_l2_is_max_makespan_error() {
        let l2 = &StructuredLoss::paper_set()[1];
        let data = [s(0.1, &[]), s(0.3, &[]), s(0.2, &[])];
        assert_eq!(l2.aggregate(&data), 0.3);
    }

    #[test]
    fn paper_l3_adds_average_task_error() {
        let l3 = &StructuredLoss::paper_set()[2];
        let data = [s(0.1, &[0.2, 0.4]), s(0.3, &[0.1, 0.1])];
        // avg( 0.1+0.3, 0.3+0.1 ) = 0.4
        assert!((l3.aggregate(&data) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn paper_l4_l5_l6_shapes() {
        let set = StructuredLoss::paper_set();
        let data = [s(0.1, &[0.2, 0.4]), s(0.3, &[0.1, 0.5])];
        // L4: max(0.1+0.3, 0.3+0.3) = 0.6
        assert!((set[3].aggregate(&data) - 0.6).abs() < 1e-12);
        // L5: avg(0.1+0.4, 0.3+0.5) = 0.65
        assert!((set[4].aggregate(&data) - 0.65).abs() < 1e-12);
        // L6: max(0.5, 0.8) = 0.8
        assert!((set[5].aggregate(&data) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn structured_loss_without_elements_falls_back_to_scalar() {
        for l in StructuredLoss::paper_set() {
            let data = [s(0.25, &[])];
            assert_eq!(l.aggregate(&data), 0.25, "{}", l.name());
        }
    }

    #[test]
    fn matrix_losses_compose_correctly() {
        let set = MatrixLoss::paper_set();
        let data = vec![vec![1.0, 3.0], vec![2.0, 2.0]];
        assert_eq!(set[0].aggregate(&data), 2.0); // avg(2, 2)
        assert_eq!(set[1].aggregate(&data), 2.5); // avg(3, 2)
        assert_eq!(set[2].aggregate(&data), 2.0); // max(2, 2)
        assert_eq!(set[3].aggregate(&data), 3.0); // max(3, 2)
    }

    #[test]
    fn empty_dataset_yields_zero_loss() {
        let l = StructuredLoss::new(Agg::Avg, ElementMix::AddMax, "t");
        assert_eq!(l.aggregate(&[]), 0.0);
        let m = MatrixLoss::new(Agg::Max, Agg::Avg, "t");
        assert_eq!(m.aggregate(&[]), 0.0);
    }

    #[test]
    fn relative_error_guards_zero_truth() {
        assert_eq!(relative_error(10.0, 8.0), 0.2);
        assert!(relative_error(0.0, 1.0).is_finite());
    }

    #[test]
    fn perfect_simulation_gives_zero_loss_everywhere() {
        let data = [s(0.0, &[0.0, 0.0]), s(0.0, &[0.0])];
        for l in StructuredLoss::paper_set() {
            assert_eq!(l.aggregate(&data), 0.0, "{}", l.name());
        }
    }
}
