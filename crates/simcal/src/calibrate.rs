//! The top-level calibration driver.
//!
//! A [`Calibrator`] bundles an algorithm choice, a budget, and a seed, and
//! produces a [`CalibrationResult`] with the best calibration found, its
//! loss, and the loss-vs-effort convergence trace (the data behind the
//! paper's Figures 1 and 4).

use crate::algorithms::AlgorithmKind;
use crate::budget::{Budget, Evaluator, TracePoint};
use crate::objective::Objective;
use crate::param::Calibration;
use serde::{Deserialize, Serialize};

/// Configuration of one calibration run.
#[derive(Clone, Copy, Debug)]
pub struct Calibrator {
    /// Which search algorithm to run.
    pub algorithm: AlgorithmKind,
    /// Effort bound (identical budgets make algorithm/loss comparisons
    /// fair — the core of the paper's methodology).
    pub budget: Budget,
    /// Seed for all of the run's randomness.
    pub seed: u64,
}

impl Calibrator {
    /// A calibrator with the paper's headline configuration (BO-GP).
    pub fn bo_gp(budget: Budget, seed: u64) -> Self {
        Self {
            algorithm: AlgorithmKind::BoGp,
            budget,
            seed,
        }
    }

    /// Run the calibration against `objective`.
    ///
    /// # Panics
    /// Panics if no evaluation produced a finite loss — either the
    /// budget admitted no evaluation at all (e.g. a zero-duration
    /// wall-clock budget) or every evaluation failed (panicked or
    /// returned a non-finite loss). The panic message carries the
    /// failure counts; use [`Calibrator::try_calibrate`] to handle this
    /// case without unwinding.
    pub fn calibrate(&self, objective: &dyn Objective) -> CalibrationResult {
        self.try_calibrate(objective)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run the calibration against `objective`, returning an error
    /// instead of panicking when no evaluation produced a finite loss.
    ///
    /// Individual objective panics and non-finite losses are isolated
    /// and quarantined by the [`Evaluator`] (see its "Failure isolation"
    /// docs); the calibration only fails as a whole when *no* usable
    /// incumbent survives the budget.
    pub fn try_calibrate(
        &self,
        objective: &dyn Objective,
    ) -> Result<CalibrationResult, CalibrationFailed> {
        self.try_calibrate_with(self.algorithm.build().as_ref(), objective)
    }

    /// Like [`Calibrator::try_calibrate`], but running a caller-supplied
    /// algorithm instance instead of building one from
    /// [`Calibrator::algorithm`].
    ///
    /// This is the hook for customized searches — e.g. a
    /// [`crate::algorithms::BayesianOpt`] seeded with warm-start
    /// observations from a previous calibration's persistent cache. The
    /// result still records `self.algorithm` as its
    /// [`CalibrationResult::algorithm`], so pass the kind the instance
    /// corresponds to.
    pub fn try_calibrate_with(
        &self,
        algorithm: &dyn crate::algorithms::SearchAlgorithm,
        objective: &dyn Objective,
    ) -> Result<CalibrationResult, CalibrationFailed> {
        let _span = obs::span!("calibrate", algorithm = algorithm.name(), seed = self.seed);
        let evaluator = Evaluator::new(objective, self.budget).with_seed(self.seed);
        algorithm.search(&evaluator, self.seed);
        let Some((loss, _, calibration)) = evaluator.best() else {
            return Err(CalibrationFailed {
                evaluations: evaluator.evaluations(),
                eval_panics: evaluator.eval_panics(),
                eval_nonfinite: evaluator.eval_nonfinite(),
            });
        };
        Ok(CalibrationResult {
            calibration,
            loss,
            evaluations: evaluator.evaluations(),
            cache_hits: evaluator.cache_hits(),
            cache_misses: evaluator.cache_misses(),
            eval_panics: evaluator.eval_panics(),
            eval_nonfinite: evaluator.eval_nonfinite(),
            elapsed_secs: evaluator.elapsed_secs(),
            trace: evaluator.trace(),
            algorithm: self.algorithm,
        })
    }
}

/// A calibration run that produced no usable result: the budget admitted
/// no evaluations, or every evaluation was quarantined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CalibrationFailed {
    /// Budget evaluations consumed (including failed ones).
    pub evaluations: usize,
    /// How many of them panicked.
    pub eval_panics: usize,
    /// How many of them returned a non-finite loss.
    pub eval_nonfinite: usize,
}

impl std::fmt::Display for CalibrationFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "calibration found no finite loss: {} evaluations ({} panicked, {} non-finite)",
            self.evaluations, self.eval_panics, self.eval_nonfinite
        )
    }
}

impl std::error::Error for CalibrationFailed {}

/// Outcome of a calibration run.
///
/// Serializes losslessly: every float survives a JSON round-trip bit-for-bit
/// (shortest-roundtrip printing), which is what lets `lodsel` checkpoint
/// results in its run ledger and resume sweeps without re-running them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// Best calibration found (natural units).
    pub calibration: Calibration,
    /// Its loss on the training dataset.
    pub loss: f64,
    /// Loss evaluations performed (memoization misses).
    pub evaluations: usize,
    /// Proposals served from the evaluator's memoization cache without
    /// consuming a budget evaluation (common for grid search and for
    /// algorithms that re-probe snapped discrete points).
    pub cache_hits: usize,
    /// Proposals that consumed a budget evaluation (always equals
    /// `evaluations`; recorded separately so ledger consumers can audit
    /// the evaluator's accounting without re-deriving it). With a
    /// persistent cache installed, replays from disk count here too —
    /// they consume budget even though the objective is not invoked.
    pub cache_misses: usize,
    /// Evaluations whose objective invocation panicked and was isolated
    /// (quarantined as `+inf`, never fed to the surrogate or incumbent).
    pub eval_panics: usize,
    /// Evaluations whose objective returned a non-finite loss
    /// (quarantined the same way).
    pub eval_nonfinite: usize,
    /// Wall-clock seconds spent.
    pub elapsed_secs: f64,
    /// Convergence trace: one point per incumbent improvement.
    pub trace: Vec<TracePoint>,
    /// The algorithm that produced this result.
    pub algorithm: AlgorithmKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::param::{Calibration, ParamKind, ParameterSpace};

    fn bowl() -> FnObjective<impl Fn(&Calibration) -> f64 + Sync> {
        let space = ParameterSpace::new()
            .with("a", ParamKind::Continuous { lo: 0.0, hi: 10.0 })
            .with("b", ParamKind::Continuous { lo: 0.0, hi: 10.0 });
        FnObjective::new(space, |c: &Calibration| {
            (c.values[0] - 3.0).powi(2) + (c.values[1] - 8.0).powi(2)
        })
    }

    #[test]
    fn calibrate_returns_consistent_result() {
        let obj = bowl();
        let result = Calibrator::bo_gp(Budget::Evaluations(100), 42).calibrate(&obj);
        assert_eq!(result.evaluations, 100);
        assert!(result.loss < 1.0, "loss {}", result.loss);
        assert!((result.calibration.values[0] - 3.0).abs() < 1.5);
        assert!((result.calibration.values[1] - 8.0).abs() < 1.5);
        // The trace ends at the reported loss.
        assert_eq!(result.trace.last().unwrap().best_loss, result.loss);
        assert_eq!(result.algorithm, AlgorithmKind::BoGp);
    }

    #[test]
    fn all_algorithms_produce_results_under_equal_budget() {
        let obj = bowl();
        for kind in AlgorithmKind::ALL {
            let c = Calibrator {
                algorithm: kind,
                budget: Budget::Evaluations(64),
                seed: 7,
            };
            let r = c.calibrate(&obj);
            assert!(r.loss.is_finite(), "{}", kind.name());
            assert!(r.evaluations <= 64, "{}", kind.name());
            assert!(!r.trace.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn trace_is_monotone() {
        let obj = bowl();
        let r = Calibrator {
            algorithm: AlgorithmKind::Random,
            budget: Budget::Evaluations(200),
            seed: 0,
        }
        .calibrate(&obj);
        assert!(r.trace.windows(2).all(|w| w[1].best_loss < w[0].best_loss));
        assert!(r
            .trace
            .windows(2)
            .all(|w| w[1].evaluations > w[0].evaluations));
    }

    #[test]
    fn result_roundtrips_through_json_bit_for_bit() {
        let obj = bowl();
        let result = Calibrator::bo_gp(Budget::Evaluations(50), 11).calibrate(&obj);
        assert_eq!(result.cache_misses, result.evaluations);
        let json = serde_json::to_string(&result).expect("serialize");
        let back: CalibrationResult = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, result);
        // PartialEq on f64 conflates -0.0 with 0.0; pin the raw bits too.
        for (a, b) in back
            .calibration
            .values
            .iter()
            .zip(&result.calibration.values)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.loss.to_bits(), result.loss.to_bits());
    }

    #[test]
    fn try_calibrate_reports_total_failure_instead_of_panicking() {
        // An objective that always panics: every evaluation is
        // quarantined, so there is no finite incumbent to return.
        let space = ParameterSpace::new().with("a", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, |_: &Calibration| -> f64 {
            panic!("this simulator version is broken")
        });
        let err = Calibrator::bo_gp(Budget::Evaluations(6), 3)
            .try_calibrate(&obj)
            .unwrap_err();
        assert_eq!(err.evaluations, 6);
        assert_eq!(err.eval_panics, 6);
        assert_eq!(err.eval_nonfinite, 0);
        let msg = err.to_string();
        assert!(msg.contains("no finite loss"), "{msg}");
        assert!(msg.contains("6 panicked"), "{msg}");
    }

    #[test]
    fn calibrate_panics_with_failure_counts_when_nothing_survives() {
        let space = ParameterSpace::new().with("a", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, |_: &Calibration| f64::NAN);
        let caught = crate::fault::guard(|| {
            Calibrator::bo_gp(Budget::Evaluations(4), 3).calibrate(&obj);
        });
        let msg = caught.unwrap_err();
        assert!(msg.contains("no finite loss"), "{msg}");
        assert!(msg.contains("4 non-finite"), "{msg}");
    }

    #[test]
    fn partial_failures_survive_and_are_counted() {
        // Panic on part of the domain: calibration still converges on
        // the surviving region and reports how many evaluations failed.
        let space = ParameterSpace::new()
            .with("a", ParamKind::Continuous { lo: 0.0, hi: 10.0 })
            .with("b", ParamKind::Continuous { lo: 0.0, hi: 10.0 });
        let obj = FnObjective::new(space, |c: &Calibration| {
            if c.values[1] > 9.0 {
                panic!("unstable region");
            }
            (c.values[0] - 3.0).powi(2) + (c.values[1] - 8.0).powi(2)
        });
        let result = Calibrator::bo_gp(Budget::Evaluations(100), 42)
            .try_calibrate(&obj)
            .unwrap();
        assert!(result.loss.is_finite());
        assert!(result.eval_panics > 0, "the search must have probed b > 9");
        assert_eq!(result.evaluations, 100);
        assert_eq!(result.cache_misses, result.evaluations);
        assert!((result.calibration.values[0] - 3.0).abs() < 1.5);
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let obj = bowl();
        let c = Calibrator::bo_gp(Budget::Evaluations(60), 9);
        let a = c.calibrate(&obj);
        let b = c.calibrate(&obj);
        assert_eq!(a.loss, b.loss);
        assert_eq!(a.calibration, b.calibration);
    }
}
