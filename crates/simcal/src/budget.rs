//! Calibration budgets and the budget-enforcing evaluator.
//!
//! The paper fixes a calibration *time budget* so that different
//! loss/algorithm combinations can be compared fairly (§3, §5.3.3, §6.3.3).
//! For reproducibility on arbitrary hardware this crate also supports an
//! *evaluation-count* budget: results under `Budget::Evaluations` are
//! bit-for-bit reproducible regardless of host speed, which is what the
//! workspace's tests and experiment binaries use by default.

use crate::objective::Objective;
use crate::param::Calibration;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A bound on the calibration effort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Budget {
    /// Stop after this many loss evaluations (deterministic).
    Evaluations(usize),
    /// Stop once this much wall-clock time has elapsed.
    WallClock(Duration),
    /// Stop at whichever bound is reached first.
    Either(usize, Duration),
}

impl Budget {
    /// The evaluation bound, if any.
    pub fn max_evaluations(&self) -> Option<usize> {
        match self {
            Budget::Evaluations(n) | Budget::Either(n, _) => Some(*n),
            Budget::WallClock(_) => None,
        }
    }

    /// The wall-clock bound, if any.
    pub fn max_elapsed(&self) -> Option<Duration> {
        match self {
            Budget::WallClock(d) | Budget::Either(_, d) => Some(*d),
            Budget::Evaluations(_) => None,
        }
    }
}

/// One point of the loss-vs-effort convergence trace (Figures 1 and 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// Number of loss evaluations completed when this best was found.
    pub evaluations: usize,
    /// Wall-clock seconds elapsed when this best was found.
    pub elapsed_secs: f64,
    /// The best (lowest) loss seen so far.
    pub best_loss: f64,
}

struct Best {
    loss: f64,
    unit_point: Vec<f64>,
    trace: Vec<TracePoint>,
}

/// Budget-enforcing, trace-recording gateway between search algorithms and
/// the objective. Algorithms request evaluations of unit-hypercube points;
/// the evaluator denormalizes, invokes the objective (in parallel for
/// batches), counts evaluations, tracks the incumbent, and reports budget
/// exhaustion.
pub struct Evaluator<'a> {
    objective: &'a dyn Objective,
    budget: Budget,
    start: Instant,
    count: AtomicUsize,
    best: Mutex<Best>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator; the wall-clock budget starts now.
    pub fn new(objective: &'a dyn Objective, budget: Budget) -> Self {
        Self {
            objective,
            budget,
            start: Instant::now(),
            count: AtomicUsize::new(0),
            best: Mutex::new(Best {
                loss: f64::INFINITY,
                unit_point: Vec::new(),
                trace: Vec::new(),
            }),
        }
    }

    /// The objective's parameter space.
    pub fn space(&self) -> &crate::param::ParameterSpace {
        self.objective.space()
    }

    /// True once the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        if let Some(n) = self.budget.max_evaluations() {
            if self.count.load(Ordering::Relaxed) >= n {
                return true;
            }
        }
        if let Some(d) = self.budget.max_elapsed() {
            if self.start.elapsed() >= d {
                return true;
            }
        }
        false
    }

    /// Evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// How many more evaluations the budget admits right now
    /// (`usize::MAX` under a pure wall-clock budget that has not expired).
    pub fn remaining(&self) -> usize {
        if self.exhausted() {
            return 0;
        }
        match self.budget.max_evaluations() {
            Some(n) => n.saturating_sub(self.count.load(Ordering::Relaxed)),
            None => usize::MAX,
        }
    }

    fn record(&self, unit_point: &[f64], loss: f64) {
        let evaluations = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        let mut best = self.best.lock();
        if loss < best.loss {
            best.loss = loss;
            best.unit_point = unit_point.to_vec();
            let elapsed_secs = self.start.elapsed().as_secs_f64();
            best.trace.push(TracePoint {
                evaluations,
                elapsed_secs,
                best_loss: loss,
            });
        }
    }

    /// Evaluate one unit-hypercube point. Returns `None` (without
    /// evaluating) when the budget is exhausted.
    pub fn eval(&self, unit_point: &[f64]) -> Option<f64> {
        if self.exhausted() {
            return None;
        }
        let calib = self.objective.space().denormalize(unit_point);
        let loss = self.objective.loss(&calib);
        self.record(unit_point, loss);
        Some(loss)
    }

    /// Evaluate a batch of points in parallel. The batch is truncated to
    /// the remaining budget: the evaluation-count bound caps it up front,
    /// and the wall-clock bound is re-checked between chunks, so a large
    /// batch stops at the first chunk boundary past the deadline instead
    /// of running to completion. Returns the losses for the evaluated
    /// prefix, in input order, or `None` when nothing could be evaluated.
    pub fn eval_batch(&self, unit_points: &[Vec<f64>]) -> Option<Vec<f64>> {
        // Small enough that a wall-clock overrun is bounded by one chunk,
        // large enough to keep rayon's workers saturated.
        const CHUNK: usize = 32;
        let mut losses = Vec::with_capacity(unit_points.len());
        while losses.len() < unit_points.len() {
            let take = (unit_points.len() - losses.len())
                .min(CHUNK)
                .min(self.remaining());
            if take == 0 {
                break;
            }
            let chunk = &unit_points[losses.len()..losses.len() + take];
            let chunk_losses: Vec<f64> = chunk
                .par_iter()
                .map(|p| {
                    let calib = self.objective.space().denormalize(p);
                    self.objective.loss(&calib)
                })
                .collect();
            // Record sequentially so the incumbent/trace update is
            // deterministic (input order), independent of rayon's
            // scheduling.
            for (p, &l) in chunk.iter().zip(&chunk_losses) {
                self.record(p, l);
            }
            losses.extend(chunk_losses);
        }
        if losses.is_empty() {
            None
        } else {
            Some(losses)
        }
    }

    /// The incumbent `(loss, unit_point, natural calibration)`, or `None`
    /// if nothing has been evaluated.
    pub fn best(&self) -> Option<(f64, Vec<f64>, Calibration)> {
        let best = self.best.lock();
        if best.loss.is_finite() {
            let calib = self.objective.space().denormalize(&best.unit_point);
            Some((best.loss, best.unit_point.clone(), calib))
        } else {
            None
        }
    }

    /// The convergence trace (one point per incumbent improvement).
    pub fn trace(&self) -> Vec<TracePoint> {
        self.best.lock().trace.clone()
    }

    /// Wall-clock seconds since the evaluator was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::param::{Calibration, ParamKind, ParameterSpace};

    fn sphere() -> FnObjective<impl Fn(&Calibration) -> f64 + Sync> {
        let space = ParameterSpace::new()
            .with("a", ParamKind::Continuous { lo: -1.0, hi: 1.0 })
            .with("b", ParamKind::Continuous { lo: -1.0, hi: 1.0 });
        FnObjective::new(space, |c: &Calibration| {
            c.values.iter().map(|v| v * v).sum()
        })
    }

    #[test]
    fn evaluation_budget_is_enforced_exactly() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(3));
        assert!(ev.eval(&[0.5, 0.5]).is_some());
        assert!(ev.eval(&[0.1, 0.1]).is_some());
        assert!(ev.eval(&[0.9, 0.9]).is_some());
        assert!(ev.eval(&[0.2, 0.2]).is_none());
        assert_eq!(ev.evaluations(), 3);
        assert!(ev.exhausted());
    }

    #[test]
    fn batch_truncates_to_budget() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(2));
        let batch = vec![vec![0.5, 0.5], vec![0.0, 0.0], vec![1.0, 1.0]];
        let losses = ev.eval_batch(&batch).unwrap();
        assert_eq!(losses.len(), 2);
        assert!(ev.eval_batch(&batch).is_none());
    }

    #[test]
    fn best_tracks_minimum_and_trace_is_decreasing() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(10));
        ev.eval(&[0.9, 0.9]).unwrap();
        ev.eval(&[0.5, 0.5]).unwrap(); // natural (0,0): loss 0
        ev.eval(&[0.8, 0.8]).unwrap(); // worse, should not displace best
        let (loss, unit, calib) = ev.best().unwrap();
        assert!(loss.abs() < 1e-12);
        assert_eq!(unit, vec![0.5, 0.5]);
        assert!(calib.values.iter().all(|v| v.abs() < 1e-12));
        let trace = ev.trace();
        assert!(trace.windows(2).all(|w| w[1].best_loss <= w[0].best_loss));
        assert!(trace
            .windows(2)
            .all(|w| w[1].evaluations > w[0].evaluations));
    }

    #[test]
    fn wallclock_budget_expires() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::WallClock(Duration::from_millis(0)));
        assert!(ev.exhausted());
        assert!(ev.eval(&[0.5, 0.5]).is_none());
        assert!(ev.best().is_none());
    }

    #[test]
    fn either_budget_takes_tighter_bound() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Either(1, Duration::from_secs(3600)));
        assert!(ev.eval(&[0.5, 0.5]).is_some());
        assert!(ev.eval(&[0.5, 0.5]).is_none());
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(100));
        let batch: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0, 0.5]).collect();
        let losses = ev.eval_batch(&batch).unwrap();
        for (p, l) in batch.iter().zip(&losses) {
            let v = 2.0 * p[0] - 1.0;
            assert!((l - v * v).abs() < 1e-12);
        }
    }

    #[test]
    fn wallclock_budget_truncates_batches_between_chunks() {
        let space = ParameterSpace::new().with("a", ParamKind::Continuous { lo: -1.0, hi: 1.0 });
        let obj = FnObjective::new(space, |c: &Calibration| {
            std::thread::sleep(Duration::from_millis(50));
            c.values[0] * c.values[0]
        });
        // Each evaluation outlasts the whole deadline, so exactly one
        // 32-point chunk runs before the between-chunk check stops the
        // batch. The seed's behavior was to run all 64 points: remaining()
        // is usize::MAX under a pure wall-clock budget, and the deadline
        // was only consulted before the batch started.
        let ev = Evaluator::new(&obj, Budget::WallClock(Duration::from_millis(25)));
        let batch: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 63.0]).collect();
        let losses = ev.eval_batch(&batch).unwrap();
        assert_eq!(losses.len(), 32, "one chunk, then the deadline check fires");
        for (p, l) in batch.iter().zip(&losses) {
            let v = 2.0 * p[0] - 1.0;
            assert!((l - v * v).abs() < 1e-12, "prefix must stay in input order");
        }
        assert!(ev.exhausted());
        assert!(ev.eval_batch(&batch).is_none());
    }

    #[test]
    fn remaining_counts_down() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(5));
        assert_eq!(ev.remaining(), 5);
        ev.eval(&[0.5, 0.5]);
        assert_eq!(ev.remaining(), 4);
    }
}
