//! Calibration budgets and the budget-enforcing evaluator.
//!
//! The paper fixes a calibration *time budget* so that different
//! loss/algorithm combinations can be compared fairly (§3, §5.3.3, §6.3.3).
//! For reproducibility on arbitrary hardware this crate also supports an
//! *evaluation-count* budget: results under `Budget::Evaluations` are
//! bit-for-bit reproducible regardless of host speed, which is what the
//! workspace's tests and experiment binaries use by default.

use crate::cache::{self, CachedOutcome, DiskCache};
use crate::fault::{self, EvalFailure, FaultKind, FaultPlan};
use crate::objective::Objective;
use crate::param::Calibration;
use parking_lot::{Mutex, RwLock};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A bound on the calibration effort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Budget {
    /// Stop after this many loss evaluations (deterministic).
    Evaluations(usize),
    /// Stop once this much wall-clock time has elapsed.
    WallClock(Duration),
    /// Stop at whichever bound is reached first.
    Either(usize, Duration),
}

impl Budget {
    /// The evaluation bound, if any.
    pub fn max_evaluations(&self) -> Option<usize> {
        match self {
            Budget::Evaluations(n) | Budget::Either(n, _) => Some(*n),
            Budget::WallClock(_) => None,
        }
    }

    /// The wall-clock bound, if any.
    pub fn max_elapsed(&self) -> Option<Duration> {
        match self {
            Budget::WallClock(d) | Budget::Either(_, d) => Some(*d),
            Budget::Evaluations(_) => None,
        }
    }
}

// Serde: hand-written because the workspace's derive stand-in only handles
// unit and struct enum variants, and `Budget` uses tuple variants. Durations
// serialize as exact `{secs, nanos}` integer pairs so budgets round-trip
// bit-for-bit through checkpoint records.

fn duration_to_value(d: &Duration) -> Value {
    Value::Object(vec![
        ("secs".to_string(), d.as_secs().to_value()),
        ("nanos".to_string(), d.subsec_nanos().to_value()),
    ])
}

fn duration_from_value(value: &Value) -> Result<Duration, DeError> {
    let secs = u64::from_value(value.get("secs").unwrap_or(&Value::Null))
        .map_err(|e| DeError(format!("duration field `secs`: {e}")))?;
    let nanos = u32::from_value(value.get("nanos").unwrap_or(&Value::Null))
        .map_err(|e| DeError(format!("duration field `nanos`: {e}")))?;
    Ok(Duration::new(secs, nanos))
}

impl Serialize for Budget {
    fn to_value(&self) -> Value {
        match self {
            Budget::Evaluations(n) => {
                Value::Object(vec![("Evaluations".to_string(), n.to_value())])
            }
            Budget::WallClock(d) => {
                Value::Object(vec![("WallClock".to_string(), duration_to_value(d))])
            }
            Budget::Either(n, d) => Value::Object(vec![(
                "Either".to_string(),
                Value::Array(vec![n.to_value(), duration_to_value(d)]),
            )]),
        }
    }
}

impl Deserialize for Budget {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(fields) = value else {
            return Err(DeError::expected("single-key Budget object", value));
        };
        let [(tag, inner)] = fields.as_slice() else {
            return Err(DeError::expected("single-key Budget object", value));
        };
        match tag.as_str() {
            "Evaluations" => usize::from_value(inner).map(Budget::Evaluations),
            "WallClock" => duration_from_value(inner).map(Budget::WallClock),
            "Either" => match inner {
                Value::Array(items) if items.len() == 2 => Ok(Budget::Either(
                    usize::from_value(&items[0])?,
                    duration_from_value(&items[1])?,
                )),
                other => Err(DeError::expected("[evaluations, duration] pair", other)),
            },
            other => Err(DeError(format!("unknown variant `{other}` for Budget"))),
        }
    }
}

/// One point of the loss-vs-effort convergence trace (Figures 1 and 4).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Number of loss evaluations completed when this best was found.
    pub evaluations: usize,
    /// Wall-clock seconds elapsed when this best was found.
    pub elapsed_secs: f64,
    /// The best (lowest) loss seen so far.
    pub best_loss: f64,
}

struct Best {
    loss: f64,
    unit_point: Vec<f64>,
    trace: Vec<TracePoint>,
}

/// A memoized evaluation outcome: either a finite loss, or a quarantine
/// marker for a point whose evaluation failed (panicked or returned a
/// non-finite loss). Quarantined points are served on re-proposal without
/// re-invoking the objective and are never reported as valid losses.
#[derive(Clone)]
enum Cached {
    Loss(f64),
    Quarantined(EvalFailure),
}

/// Budget-enforcing, trace-recording gateway between search algorithms and
/// the objective. Algorithms request evaluations of unit-hypercube points;
/// the evaluator denormalizes, invokes the objective (in parallel, fanning
/// the whole point × scenario product into the thread pool for batches),
/// counts evaluations, tracks the incumbent, and reports budget
/// exhaustion.
///
/// # Memoization
///
/// [`Objective::loss`] is required to be deterministic, so the evaluator
/// caches losses keyed by the *canonicalized* point — the bit pattern of
/// the denormalized natural-unit calibration, with `-0.0` folded into
/// `0.0` (see [`cache::canonical_key`]). Two unit points that snap to the
/// same calibration (common for integer/discrete parameters, grid
/// re-sweeps, and BO local refinement re-proposals) share one cache entry.
/// A cache hit returns the stored loss **without consuming a budget
/// evaluation** and without re-recording the incumbent (it was recorded
/// when first computed). [`Evaluator::cache_hits`] /
/// [`Evaluator::cache_misses`] expose the counters. A point with a NaN
/// component has no canonical identity and is evaluated uncached.
///
/// # Persistent cache
///
/// When the objective declares a [`Objective::cache_fingerprint`] and a
/// cache directory is active ([`cache::install`] or `CALIB_CACHE`,
/// snapshotted at construction like the fault plan), a memo miss consults
/// the on-disk shard for (fingerprint, seed) before invoking the
/// objective. A disk hit **consumes a budget evaluation** exactly like a
/// fresh invocation — incumbent, trace, failure counters, and evaluation
/// indices are bit-for-bit identical to an uncached run — but skips the
/// simulation itself (`cache_misses` still counts it; the objective was
/// simply not re-invoked). Fresh outcomes, including quarantined
/// failures, are persisted back to the shard; evaluations synthesized by
/// an injected [`FaultPlan`] are *not*, so chaos runs never poison the
/// cache.
///
/// # Failure isolation
///
/// Every objective invocation runs under [`fault::guard`]: a panic or a
/// non-finite loss is converted into a typed [`EvalFailure`], consumes
/// one budget evaluation, and **quarantines** the point — the search
/// algorithm sees `+inf` (so the point is maximally unattractive but the
/// search continues), the incumbent and convergence trace are never
/// updated from it, and re-proposals are served from the quarantine
/// cache without re-invoking the objective. Failure counts are exposed
/// via [`Evaluator::eval_panics`] / [`Evaluator::eval_nonfinite`] /
/// [`Evaluator::failures`].
pub struct Evaluator<'a> {
    objective: &'a dyn Objective,
    budget: Budget,
    /// Seed of the calibration run driving this evaluator; used only to
    /// scope injected faults (searches draw their own rng from the same
    /// seed independently).
    seed: u64,
    /// Snapshot of the fault-injection plan installed when the
    /// evaluator was constructed ([`fault::current`]).
    faults: Option<Arc<FaultPlan>>,
    /// Snapshot of the persistent-cache directory active at construction
    /// ([`cache::current`]).
    cache_dir: Option<Arc<PathBuf>>,
    /// Lazily opened disk shard (`None` inside when the objective has no
    /// fingerprint or no cache directory is active). Opened on first
    /// evaluation so that [`Evaluator::with_seed`] is already applied.
    disk: OnceLock<Option<Arc<DiskCache>>>,
    start: Instant,
    count: AtomicUsize,
    best: Mutex<Best>,
    cache: RwLock<HashMap<Vec<u64>, Cached>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    panics: AtomicUsize,
    nonfinite: AtomicUsize,
    failures: Mutex<Vec<(usize, EvalFailure)>>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator; the wall-clock budget starts now. The
    /// evaluator snapshots the process-global fault-injection plan (if
    /// any) with seed 0; use [`Evaluator::with_seed`] to scope
    /// seed-targeted faults to this evaluator.
    pub fn new(objective: &'a dyn Objective, budget: Budget) -> Self {
        Self {
            objective,
            budget,
            seed: 0,
            faults: fault::current(),
            cache_dir: cache::current(),
            disk: OnceLock::new(),
            start: Instant::now(),
            count: AtomicUsize::new(0),
            best: Mutex::new(Best {
                loss: f64::INFINITY,
                unit_point: Vec::new(),
                trace: Vec::new(),
            }),
            cache: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            panics: AtomicUsize::new(0),
            nonfinite: AtomicUsize::new(0),
            failures: Mutex::new(Vec::new()),
        }
    }

    /// Tag the evaluator with the calibration run's seed so that
    /// seed-scoped [`FaultPlan`] entries can target it.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The objective's parameter space.
    pub fn space(&self) -> &crate::param::ParameterSpace {
        self.objective.space()
    }

    /// True once the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        if let Some(n) = self.budget.max_evaluations() {
            if self.count.load(Ordering::Relaxed) >= n {
                return true;
            }
        }
        if let Some(d) = self.budget.max_elapsed() {
            if self.start.elapsed() >= d {
                return true;
            }
        }
        false
    }

    /// Evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// How many more evaluations the budget admits right now
    /// (`usize::MAX` under a pure wall-clock budget that has not expired).
    pub fn remaining(&self) -> usize {
        if self.exhausted() {
            return 0;
        }
        match self.budget.max_evaluations() {
            Some(n) => n.saturating_sub(self.count.load(Ordering::Relaxed)),
            None => usize::MAX,
        }
    }

    fn record(&self, unit_point: &[f64], loss: f64) {
        let evaluations = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        let mut best = self.best.lock();
        if loss < best.loss {
            best.loss = loss;
            best.unit_point = unit_point.to_vec();
            let elapsed_secs = self.start.elapsed().as_secs_f64();
            best.trace.push(TracePoint {
                evaluations,
                elapsed_secs,
                best_loss: loss,
            });
        }
    }

    /// Record a failed evaluation: it consumes one budget evaluation
    /// (keeping `cache_misses == evaluations`), bumps the matching
    /// failure counter, and quarantines the point (when it has a
    /// canonical key) so re-proposals never re-invoke the objective. The
    /// incumbent and trace are untouched.
    fn record_failure(&self, key: Option<&[u64]>, failure: EvalFailure) {
        let index = self.count.fetch_add(1, Ordering::Relaxed);
        match &failure {
            EvalFailure::Panic { .. } => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                obs::counter(obs::Counter::EvalPanics, 1);
            }
            EvalFailure::NonFinite { .. } => {
                self.nonfinite.fetch_add(1, Ordering::Relaxed);
                obs::counter(obs::Counter::EvalNonfinite, 1);
            }
            EvalFailure::BudgetExhausted => {}
        }
        if let Some(key) = key {
            self.cache
                .write()
                .insert(key.to_vec(), Cached::Quarantined(failure.clone()));
        }
        self.failures.lock().push((index, failure));
    }

    /// The persistent-cache shard for this evaluator, opened on first
    /// use; `None` when the objective declares no fingerprint or no cache
    /// directory was active at construction.
    fn disk(&self) -> Option<&DiskCache> {
        self.disk
            .get_or_init(|| {
                let dir = self.cache_dir.as_ref()?;
                let fingerprint = self.objective.cache_fingerprint()?;
                Some(Arc::new(DiskCache::open(
                    dir,
                    fingerprint.shard_id(self.seed),
                )))
            })
            .as_deref()
    }

    /// Persist a fresh evaluation outcome to the disk shard. Skipped for
    /// keyless (NaN-component) points and for outcomes synthesized by an
    /// injected fault — a chaos run must never poison the shared cache.
    fn persist(&self, calib: &Calibration, key: Option<&Vec<u64>>, outcome: CachedOutcome) {
        if key.is_none() {
            return;
        }
        if let Some(disk) = self.disk() {
            disk.store(&calib.values, outcome);
        }
    }

    /// Replay a disk-cached outcome as if the objective had just produced
    /// it: identical budget consumption, incumbent/trace updates, failure
    /// accounting, and memo-map population — only the simulation itself
    /// is skipped.
    fn replay(
        &self,
        unit_point: &[f64],
        key: &[u64],
        outcome: CachedOutcome,
    ) -> Result<f64, EvalFailure> {
        match outcome {
            CachedOutcome::Loss { loss } => {
                self.record(unit_point, loss);
                self.cache.write().insert(key.to_vec(), Cached::Loss(loss));
                Ok(loss)
            }
            CachedOutcome::Panic { message } => {
                let failure = EvalFailure::Panic { message };
                self.record_failure(Some(key), failure.clone());
                Err(failure)
            }
            CachedOutcome::NonFinite { loss_bits } => {
                let failure = EvalFailure::NonFinite {
                    loss: f64::from_bits(loss_bits),
                };
                self.record_failure(Some(key), failure.clone());
                Err(failure)
            }
        }
    }

    /// The fault (if any) the active plan injects into evaluation
    /// `index` of this evaluator.
    fn fault_for(&self, index: usize) -> Option<FaultKind> {
        self.faults
            .as_ref()
            .and_then(|plan| plan.fault_at(self.seed, index))
    }

    /// Evaluate one chunk of uncached calibrations, point `p` taking
    /// evaluation index `indices[p]`. Without matching faults this is a
    /// single flattened [`Objective::try_par_loss_batch`] fan-out; with
    /// faults, clean points still share one fan-out while faulted points
    /// synthesize their failure through the same [`fault::guard`] the
    /// real path uses (an injected panic really panics and really
    /// unwinds), keeping injected-fault runs bit-for-bit reproducible
    /// across thread counts.
    fn run_chunk(&self, indices: &[usize], calibs: &[Calibration]) -> Vec<Result<f64, String>> {
        debug_assert_eq!(indices.len(), calibs.len());
        let faults: Vec<Option<FaultKind>> = indices.iter().map(|&i| self.fault_for(i)).collect();
        if faults.iter().all(Option::is_none) {
            return self.objective.try_par_loss_batch(calibs);
        }
        let clean: Vec<Calibration> = calibs
            .iter()
            .zip(&faults)
            .filter(|(_, f)| f.is_none())
            .map(|(c, _)| c.clone())
            .collect();
        let mut clean_results = self.objective.try_par_loss_batch(&clean).into_iter();
        faults
            .iter()
            .enumerate()
            .map(|(p, f)| match f {
                None => clean_results
                    .next()
                    .expect("one batch result per clean point"),
                Some(FaultKind::Panic) => fault::guard(|| {
                    panic!(
                        "injected fault: panic at evaluation {} (seed {})",
                        indices[p], self.seed
                    )
                }),
                Some(FaultKind::Nan) => Ok(f64::NAN),
            })
            .collect()
    }

    /// Evaluate one unit-hypercube point. Returns `None` (without
    /// evaluating) when the budget is exhausted, and `+inf` for a point
    /// whose evaluation failed (panic or non-finite loss) — see
    /// [`Evaluator::try_eval`] for the typed variant. Routes through the
    /// same memoization and recording path as [`Evaluator::eval_batch`]:
    /// a cached point returns its loss without consuming a budget
    /// evaluation, and an uncached point fans its per-scenario simulator
    /// invocations into the thread pool via [`Objective::par_loss`].
    pub fn eval(&self, unit_point: &[f64]) -> Option<f64> {
        match self.try_eval(unit_point) {
            Ok(loss) => Some(loss),
            Err(EvalFailure::BudgetExhausted) => None,
            Err(_) => Some(f64::INFINITY),
        }
    }

    /// Evaluate one unit-hypercube point, reporting failures as typed
    /// [`EvalFailure`] values instead of sentinel losses. A failed
    /// evaluation consumes one budget evaluation and quarantines the
    /// point: re-proposing it returns the same failure as a cache hit,
    /// without re-invoking the objective.
    pub fn try_eval(&self, unit_point: &[f64]) -> Result<f64, EvalFailure> {
        if self.exhausted() {
            return Err(EvalFailure::BudgetExhausted);
        }
        let calib = self.objective.space().denormalize(unit_point);
        let key = cache::canonical_key(&calib);
        if let Some(key) = &key {
            if let Some(cached) = self.cache.read().get(key).cloned() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter(obs::Counter::EvalCacheHits, 1);
                return match cached {
                    Cached::Loss(loss) => Ok(loss),
                    Cached::Quarantined(failure) => Err(failure),
                };
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Disk lookup behind the memo map: a hit replays the stored
        // outcome (consuming budget, skipping the simulation).
        if let Some(key) = &key {
            if let Some(disk) = self.disk() {
                if let Some(outcome) = disk.lookup(key) {
                    obs::counter(obs::Counter::DiskCacheHits, 1);
                    return self.replay(unit_point, key, outcome);
                }
                obs::counter(obs::Counter::DiskCacheMisses, 1);
            }
        }
        obs::counter(obs::Counter::EvalCacheMisses, 1);
        // The clock read is gated so the disabled path stays one
        // relaxed atomic load.
        let t0 = obs::enabled().then(Instant::now);
        // The index this evaluation will record under. Exact as long as
        // evaluations are driven from one search thread (all shipped
        // algorithms), which is what makes fault targeting by index
        // deterministic.
        let index = self.count.load(Ordering::Relaxed);
        let fault = self.fault_for(index);
        let injected = fault.is_some();
        let outcome = match fault {
            Some(FaultKind::Panic) => fault::guard(|| {
                panic!(
                    "injected fault: panic at evaluation {index} (seed {})",
                    self.seed
                )
            }),
            Some(FaultKind::Nan) => Ok(f64::NAN),
            None => fault::guard(|| self.objective.par_loss(&calib)),
        };
        match outcome {
            Ok(loss) if loss.is_finite() => {
                if let Some(t0) = t0 {
                    obs::observe(obs::Hist::EvalLatency, t0.elapsed().as_secs_f64());
                }
                self.record(unit_point, loss);
                if let Some(key) = &key {
                    self.cache.write().insert(key.clone(), Cached::Loss(loss));
                }
                if !injected {
                    self.persist(&calib, key.as_ref(), CachedOutcome::Loss { loss });
                }
                Ok(loss)
            }
            Ok(loss) => {
                let failure = EvalFailure::NonFinite { loss };
                self.record_failure(key.as_deref(), failure.clone());
                if !injected {
                    self.persist(
                        &calib,
                        key.as_ref(),
                        CachedOutcome::NonFinite {
                            loss_bits: loss.to_bits(),
                        },
                    );
                }
                Err(failure)
            }
            Err(message) => {
                let failure = EvalFailure::Panic {
                    message: message.clone(),
                };
                self.record_failure(key.as_deref(), failure.clone());
                if !injected {
                    self.persist(&calib, key.as_ref(), CachedOutcome::Panic { message });
                }
                Err(failure)
            }
        }
    }

    /// Evaluate a batch of points in parallel. The batch is truncated to
    /// the remaining budget: the evaluation-count bound caps the number of
    /// *uncached* points up front, and the wall-clock bound is re-checked
    /// between chunks, so a large batch stops at the first chunk boundary
    /// past the deadline instead of running to completion. Returns the
    /// losses for the resolved prefix, in input order, or `None` when
    /// nothing could be resolved.
    ///
    /// Cached points are served for free (no budget evaluation); each
    /// chunk of uncached points — deduplicated within the chunk — is
    /// evaluated as one flattened (point × scenario) fan-out via
    /// [`Objective::try_par_loss_batch`], and recorded sequentially in
    /// input order so the incumbent/trace update is deterministic,
    /// independent of pool scheduling. A point whose evaluation fails
    /// (panic or non-finite loss) resolves to `+inf` in the returned
    /// losses and is quarantined; it still consumes its budget
    /// evaluation.
    pub fn eval_batch(&self, unit_points: &[Vec<f64>]) -> Option<Vec<f64>> {
        // Small enough that a wall-clock overrun is bounded by one chunk,
        // large enough to keep the pool's workers saturated (each point
        // further fans out into one item per ground-truth scenario).
        const CHUNK: usize = 32;
        if self.exhausted() {
            return None;
        }
        let mut losses: Vec<f64> = Vec::with_capacity(unit_points.len());
        let mut idx = 0;
        while idx < unit_points.len() {
            let take = CHUNK.min(self.remaining());
            if take == 0 {
                break;
            }
            // Build the next window: memo hits resolve immediately;
            // budget-consuming points accumulate (deduplicated) until the
            // chunk budget is full. `window` maps each input to Ok(cached
            // loss) or Err(index into the pending chunk). A pending slot
            // is either a disk-cache replay or a real invocation — both
            // consume budget, in slot order, so evaluation indices match
            // an uncached run exactly.
            let mut window: Vec<Result<f64, usize>> = Vec::new();
            let mut pending_keys: Vec<Option<Vec<u64>>> = Vec::new();
            let mut pending_calibs: Vec<Calibration> = Vec::new();
            let mut pending_inputs: Vec<usize> = Vec::new();
            let mut pending_disk: Vec<Option<CachedOutcome>> = Vec::new();
            let mut j = idx;
            while j < unit_points.len() && pending_inputs.len() < take {
                let calib = self.objective.space().denormalize(&unit_points[j]);
                let key = cache::canonical_key(&calib);
                let memo = key.as_ref().and_then(|k| self.cache.read().get(k).cloned());
                if let Some(cached) = memo {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    window.push(Ok(match cached {
                        Cached::Loss(l) => l,
                        // Quarantined points are served as +inf without
                        // re-invoking the objective or re-recording the
                        // failure.
                        Cached::Quarantined(_) => f64::INFINITY,
                    }));
                } else if let Some(dup) = key
                    .as_ref()
                    .and_then(|k| pending_keys.iter().position(|p| p.as_ref() == Some(k)))
                {
                    // Same canonical point already pending in this chunk:
                    // evaluate once, serve both slots.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    window.push(Err(dup));
                } else {
                    let disk_hit = key
                        .as_ref()
                        .and_then(|k| self.disk().and_then(|d| d.lookup(k)));
                    window.push(Err(pending_inputs.len()));
                    pending_keys.push(key);
                    pending_calibs.push(calib);
                    pending_inputs.push(j);
                    pending_disk.push(disk_hit);
                }
                j += 1;
            }
            self.misses
                .fetch_add(pending_inputs.len(), Ordering::Relaxed);
            obs::counter(
                obs::Counter::EvalCacheHits,
                (window.len() - pending_inputs.len()) as u64,
            );
            // Split the pending slots: disk replays are recorded in the
            // slot loop below; run slots go to the objective as one
            // fan-out with their exact evaluation indices.
            let base = self.count.load(Ordering::Relaxed);
            let run_indices: Vec<usize> = pending_disk
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_none())
                .map(|(s, _)| base + s)
                .collect();
            let run_calibs: Vec<Calibration> = pending_disk
                .iter()
                .zip(&pending_calibs)
                .filter(|(d, _)| d.is_none())
                .map(|(_, c)| c.clone())
                .collect();
            let disk_hits = pending_inputs.len() - run_calibs.len();
            obs::counter(obs::Counter::DiskCacheHits, disk_hits as u64);
            if self.disk().is_some() {
                obs::counter(obs::Counter::DiskCacheMisses, run_calibs.len() as u64);
            }
            obs::counter(obs::Counter::EvalCacheMisses, run_calibs.len() as u64);
            let t0 = obs::enabled().then(Instant::now);
            let outcomes = if run_calibs.is_empty() {
                Vec::new()
            } else {
                self.run_chunk(&run_indices, &run_calibs)
            };
            if let Some(t0) = t0.filter(|_| !run_calibs.is_empty()) {
                // The chunk runs as one fan-out; attribute its wall time
                // evenly across the points it actually evaluated.
                let per_point = t0.elapsed().as_secs_f64() / run_calibs.len() as f64;
                for _ in 0..run_calibs.len() {
                    obs::observe(obs::Hist::EvalLatency, per_point);
                }
            }
            // Record sequentially in slot order: slot `s` consumes
            // evaluation index `base + s` whether it was replayed from
            // disk or freshly evaluated — deterministic regardless of
            // pool scheduling, bit-for-bit identical to an uncached run.
            let mut run_outcomes = outcomes.into_iter();
            let mut chunk_losses: Vec<f64> = Vec::with_capacity(pending_inputs.len());
            for s in 0..pending_inputs.len() {
                let input = pending_inputs[s];
                let key = &pending_keys[s];
                match pending_disk[s].take() {
                    Some(outcome) => {
                        let key = key.as_ref().expect("disk hits always have a key");
                        match self.replay(&unit_points[input], key, outcome) {
                            Ok(l) => chunk_losses.push(l),
                            Err(_) => chunk_losses.push(f64::INFINITY),
                        }
                    }
                    None => {
                        let injected = self.fault_for(base + s).is_some();
                        let outcome = run_outcomes.next().expect("one outcome per run slot");
                        match outcome {
                            Ok(l) if l.is_finite() => {
                                self.record(&unit_points[input], l);
                                if let Some(k) = key {
                                    self.cache.write().insert(k.clone(), Cached::Loss(l));
                                }
                                if !injected {
                                    self.persist(
                                        &pending_calibs[s],
                                        key.as_ref(),
                                        CachedOutcome::Loss { loss: l },
                                    );
                                }
                                chunk_losses.push(l);
                            }
                            Ok(l) => {
                                self.record_failure(
                                    key.as_deref(),
                                    EvalFailure::NonFinite { loss: l },
                                );
                                if !injected {
                                    self.persist(
                                        &pending_calibs[s],
                                        key.as_ref(),
                                        CachedOutcome::NonFinite {
                                            loss_bits: l.to_bits(),
                                        },
                                    );
                                }
                                chunk_losses.push(f64::INFINITY);
                            }
                            Err(message) => {
                                self.record_failure(
                                    key.as_deref(),
                                    EvalFailure::Panic {
                                        message: message.clone(),
                                    },
                                );
                                if !injected {
                                    self.persist(
                                        &pending_calibs[s],
                                        key.as_ref(),
                                        CachedOutcome::Panic { message },
                                    );
                                }
                                chunk_losses.push(f64::INFINITY);
                            }
                        }
                    }
                }
            }
            losses.extend(window.into_iter().map(|w| match w {
                Ok(l) => l,
                Err(k) => chunk_losses[k],
            }));
            idx = j;
        }
        if losses.is_empty() {
            None
        } else {
            Some(losses)
        }
    }

    /// Memoization hits: evaluations served from the cache without
    /// consuming budget.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Memoization misses: proposals that consumed a budget evaluation
    /// (always equals [`Evaluator::evaluations`]; failed evaluations and
    /// disk-cache replays count too — they consumed budget, even though a
    /// replay skips the objective invocation itself).
    pub fn cache_misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evaluations whose objective invocation panicked (isolated and
    /// quarantined rather than crashing the calibration).
    pub fn eval_panics(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }

    /// Evaluations whose objective returned a non-finite loss.
    pub fn eval_nonfinite(&self) -> usize {
        self.nonfinite.load(Ordering::Relaxed)
    }

    /// Every failed evaluation as `(evaluation index, failure)`, in the
    /// order the failures were recorded.
    pub fn failures(&self) -> Vec<(usize, EvalFailure)> {
        self.failures.lock().clone()
    }

    /// The incumbent `(loss, unit_point, natural calibration)`, or `None`
    /// if no evaluation produced a finite loss (nothing evaluated, or
    /// every evaluation was quarantined).
    pub fn best(&self) -> Option<(f64, Vec<f64>, Calibration)> {
        let best = self.best.lock();
        if best.loss.is_finite() {
            let calib = self.objective.space().denormalize(&best.unit_point);
            Some((best.loss, best.unit_point.clone(), calib))
        } else {
            None
        }
    }

    /// The convergence trace (one point per incumbent improvement).
    pub fn trace(&self) -> Vec<TracePoint> {
        self.best.lock().trace.clone()
    }

    /// Wall-clock seconds since the evaluator was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::param::{Calibration, ParamKind, ParameterSpace};

    fn sphere() -> FnObjective<impl Fn(&Calibration) -> f64 + Sync> {
        let space = ParameterSpace::new()
            .with("a", ParamKind::Continuous { lo: -1.0, hi: 1.0 })
            .with("b", ParamKind::Continuous { lo: -1.0, hi: 1.0 });
        FnObjective::new(space, |c: &Calibration| {
            c.values.iter().map(|v| v * v).sum()
        })
    }

    #[test]
    fn evaluation_budget_is_enforced_exactly() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(3));
        assert!(ev.eval(&[0.5, 0.5]).is_some());
        assert!(ev.eval(&[0.1, 0.1]).is_some());
        assert!(ev.eval(&[0.9, 0.9]).is_some());
        assert!(ev.eval(&[0.2, 0.2]).is_none());
        assert_eq!(ev.evaluations(), 3);
        assert!(ev.exhausted());
    }

    #[test]
    fn batch_truncates_to_budget() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(2));
        let batch = vec![vec![0.5, 0.5], vec![0.0, 0.0], vec![1.0, 1.0]];
        let losses = ev.eval_batch(&batch).unwrap();
        assert_eq!(losses.len(), 2);
        assert!(ev.eval_batch(&batch).is_none());
    }

    #[test]
    fn best_tracks_minimum_and_trace_is_decreasing() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(10));
        ev.eval(&[0.9, 0.9]).unwrap();
        ev.eval(&[0.5, 0.5]).unwrap(); // natural (0,0): loss 0
        ev.eval(&[0.8, 0.8]).unwrap(); // worse, should not displace best
        let (loss, unit, calib) = ev.best().unwrap();
        assert!(loss.abs() < 1e-12);
        assert_eq!(unit, vec![0.5, 0.5]);
        assert!(calib.values.iter().all(|v| v.abs() < 1e-12));
        let trace = ev.trace();
        assert!(trace.windows(2).all(|w| w[1].best_loss <= w[0].best_loss));
        assert!(trace
            .windows(2)
            .all(|w| w[1].evaluations > w[0].evaluations));
    }

    #[test]
    fn wallclock_budget_expires() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::WallClock(Duration::from_millis(0)));
        assert!(ev.exhausted());
        assert!(ev.eval(&[0.5, 0.5]).is_none());
        assert!(ev.best().is_none());
    }

    #[test]
    fn either_budget_takes_tighter_bound() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Either(1, Duration::from_secs(3600)));
        assert!(ev.eval(&[0.5, 0.5]).is_some());
        assert!(ev.eval(&[0.5, 0.5]).is_none());
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(100));
        let batch: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0, 0.5]).collect();
        let losses = ev.eval_batch(&batch).unwrap();
        for (p, l) in batch.iter().zip(&losses) {
            let v = 2.0 * p[0] - 1.0;
            assert!((l - v * v).abs() < 1e-12);
        }
    }

    #[test]
    fn wallclock_budget_truncates_batches_between_chunks() {
        let space = ParameterSpace::new().with("a", ParamKind::Continuous { lo: -1.0, hi: 1.0 });
        let obj = FnObjective::new(space, |c: &Calibration| {
            std::thread::sleep(Duration::from_millis(50));
            c.values[0] * c.values[0]
        });
        // Each evaluation outlasts the whole deadline, so exactly one
        // 32-point chunk runs before the between-chunk check stops the
        // batch. The seed's behavior was to run all 64 points: remaining()
        // is usize::MAX under a pure wall-clock budget, and the deadline
        // was only consulted before the batch started.
        let ev = Evaluator::new(&obj, Budget::WallClock(Duration::from_millis(25)));
        let batch: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 63.0]).collect();
        let losses = ev.eval_batch(&batch).unwrap();
        assert_eq!(losses.len(), 32, "one chunk, then the deadline check fires");
        for (p, l) in batch.iter().zip(&losses) {
            let v = 2.0 * p[0] - 1.0;
            assert!((l - v * v).abs() < 1e-12, "prefix must stay in input order");
        }
        assert!(ev.exhausted());
        assert!(ev.eval_batch(&batch).is_none());
    }

    #[test]
    fn remaining_counts_down() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(5));
        assert_eq!(ev.remaining(), 5);
        ev.eval(&[0.5, 0.5]);
        assert_eq!(ev.remaining(), 4);
    }

    #[test]
    fn memoized_hits_do_not_consume_budget() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(3));
        let first = ev.eval(&[0.25, 0.75]).unwrap();
        // Re-proposing the same point is served from the cache: the loss
        // is identical, no budget evaluation is consumed, and the trace
        // is not re-recorded.
        for _ in 0..10 {
            assert_eq!(ev.eval(&[0.25, 0.75]), Some(first));
        }
        assert_eq!(ev.evaluations(), 1);
        assert_eq!(ev.remaining(), 2);
        assert_eq!(ev.cache_hits(), 10);
        assert_eq!(ev.cache_misses(), 1);
        assert_eq!(ev.trace().len(), 1);
    }

    #[test]
    fn batch_serves_cached_and_duplicate_points_for_free() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(4));
        let a = ev.eval(&[0.5, 0.5]).unwrap();
        // Batch mixes a cached point, a fresh point, and an in-batch
        // duplicate of that fresh point: only the fresh one burns budget.
        let batch = vec![vec![0.5, 0.5], vec![0.9, 0.1], vec![0.9, 0.1]];
        let losses = ev.eval_batch(&batch).unwrap();
        assert_eq!(losses.len(), 3);
        assert_eq!(losses[0], a);
        assert_eq!(losses[1], losses[2]);
        assert_eq!(ev.evaluations(), 2);
        assert_eq!(ev.cache_misses(), 2);
        assert_eq!(ev.cache_hits(), 2);
    }

    #[test]
    fn snapped_unit_points_share_cache_entries() {
        // Two distinct unit coordinates that denormalize to the same
        // discrete calibration must share one cache entry: the key is the
        // canonical (denormalized) point, not the raw proposal.
        let space = ParameterSpace::new().with("lod", ParamKind::Integer { lo: 1, hi: 2 });
        let obj = FnObjective::new(space, |c: &Calibration| c.values[0]);
        let ev = Evaluator::new(&obj, Budget::Evaluations(10));
        ev.eval(&[0.1]).unwrap();
        ev.eval(&[0.3]).unwrap(); // snaps to the same level as 0.1
        assert_eq!(ev.cache_misses(), 1);
        assert_eq!(ev.cache_hits(), 1);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn budget_and_trace_points_roundtrip_through_json() {
        for budget in [
            Budget::Evaluations(150),
            Budget::WallClock(Duration::new(3, 141_592_653)),
            Budget::Either(usize::MAX, Duration::from_nanos(1)),
        ] {
            let json = serde_json::to_string(&budget).expect("serialize");
            let back: Budget = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, budget, "{json}");
        }
        assert!(serde_json::from_str::<Budget>("{\"Hours\": 1}").is_err());
        let tp = TracePoint {
            evaluations: 17,
            elapsed_secs: 0.1 + 0.2, // not exactly representable: exercises float_roundtrip
            best_loss: 1.0 / 3.0,
        };
        let json = serde_json::to_string(&tp).expect("serialize");
        let back: TracePoint = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, tp);
        assert_eq!(back.elapsed_secs.to_bits(), tp.elapsed_secs.to_bits());
    }

    /// An objective that panics inside a marked region of the unit square
    /// and counts real invocations, so tests can prove quarantined
    /// re-proposals never re-invoke it.
    fn trapdoor(
        calls: &std::sync::atomic::AtomicUsize,
    ) -> FnObjective<impl Fn(&Calibration) -> f64 + Sync + '_> {
        let space = ParameterSpace::new()
            .with("a", ParamKind::Continuous { lo: -1.0, hi: 1.0 })
            .with("b", ParamKind::Continuous { lo: -1.0, hi: 1.0 });
        FnObjective::new(space, move |c: &Calibration| {
            calls.fetch_add(1, Ordering::SeqCst);
            if c.values[0] > 0.5 {
                panic!("simulator diverged at a={}", c.values[0]);
            }
            if c.values[1] > 0.5 {
                return f64::NAN;
            }
            c.values.iter().map(|v| v * v).sum()
        })
    }

    #[test]
    fn panicking_point_is_quarantined_not_fatal() {
        let calls = AtomicUsize::new(0);
        let obj = trapdoor(&calls);
        let ev = Evaluator::new(&obj, Budget::Evaluations(10));
        // a = 0.9 natural -> panic region.
        assert_eq!(ev.eval(&[0.95, 0.5]), Some(f64::INFINITY));
        assert_eq!(ev.evaluations(), 1, "a failed evaluation consumes budget");
        assert_eq!(ev.eval_panics(), 1);
        assert_eq!(ev.eval_nonfinite(), 0);
        assert!(ev.best().is_none(), "a quarantined point never wins");
        assert!(ev.trace().is_empty());
        let failures = ev.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 0);
        match &failures[0].1 {
            EvalFailure::Panic { message } => assert!(message.contains("simulator diverged")),
            other => panic!("expected Panic, got {other:?}"),
        }
        // Re-proposing the quarantined point is a cache hit: no budget,
        // no re-invocation of the objective.
        let invocations = calls.load(Ordering::SeqCst);
        assert_eq!(ev.eval(&[0.95, 0.5]), Some(f64::INFINITY));
        assert_eq!(calls.load(Ordering::SeqCst), invocations);
        assert_eq!(ev.evaluations(), 1);
        assert_eq!(ev.cache_hits(), 1);
        // A healthy point afterwards still works and becomes the best.
        assert!(ev.eval(&[0.5, 0.5]).unwrap().abs() < 1e-12);
        assert!(ev.best().is_some());
    }

    #[test]
    fn nan_loss_is_quarantined_as_nonfinite() {
        let calls = AtomicUsize::new(0);
        let obj = trapdoor(&calls);
        let ev = Evaluator::new(&obj, Budget::Evaluations(10));
        match ev.try_eval(&[0.1, 0.95]) {
            Err(EvalFailure::NonFinite { loss }) => assert!(loss.is_nan()),
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert_eq!(ev.eval_nonfinite(), 1);
        assert_eq!(ev.evaluations(), 1);
        // The typed failure is replayed on re-proposal, served from the
        // quarantine cache.
        let invocations = calls.load(Ordering::SeqCst);
        assert!(matches!(
            ev.try_eval(&[0.1, 0.95]),
            Err(EvalFailure::NonFinite { .. })
        ));
        assert_eq!(calls.load(Ordering::SeqCst), invocations);
        assert_eq!(ev.cache_hits(), 1);
    }

    #[test]
    fn try_eval_reports_budget_exhaustion() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(1));
        assert!(ev.try_eval(&[0.5, 0.5]).is_ok());
        assert_eq!(ev.try_eval(&[0.1, 0.1]), Err(EvalFailure::BudgetExhausted));
    }

    #[test]
    fn batch_isolates_failures_per_point() {
        let calls = AtomicUsize::new(0);
        let obj = trapdoor(&calls);
        let ev = Evaluator::new(&obj, Budget::Evaluations(10));
        // healthy, panic, nan, healthy — the healthy losses must be
        // exactly what a clean evaluator computes.
        let batch = vec![
            vec![0.25, 0.25],
            vec![0.95, 0.25],
            vec![0.25, 0.95],
            vec![0.4, 0.4],
        ];
        let losses = ev.eval_batch(&batch).unwrap();
        assert_eq!(losses.len(), 4);
        assert!(losses[0].is_finite());
        assert_eq!(losses[1], f64::INFINITY);
        assert_eq!(losses[2], f64::INFINITY);
        assert!(losses[3].is_finite());
        assert_eq!(ev.evaluations(), 4, "failed points consume budget");
        assert_eq!(ev.eval_panics(), 1);
        assert_eq!(ev.eval_nonfinite(), 1);
        assert_eq!(ev.cache_misses(), ev.evaluations());
        // Failure records carry the deterministic evaluation indices.
        let indices: Vec<usize> = ev.failures().iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![1, 2]);
        // Cross-check the healthy values against a clean evaluator.
        let clean_calls = AtomicUsize::new(0);
        let clean_obj = trapdoor(&clean_calls);
        let clean = Evaluator::new(&clean_obj, Budget::Evaluations(10));
        assert_eq!(clean.eval(&[0.25, 0.25]), Some(losses[0]));
        assert_eq!(clean.eval(&[0.4, 0.4]), Some(losses[3]));
    }

    /// Serializes tests that install the process-global fault plan.
    static FAULTS: std::sync::Mutex<()> = std::sync::Mutex::new(());
    /// A seed no other simcal test uses, so a concurrently constructed
    /// evaluator (tests run threaded) can never match these specs.
    const FAULT_SEED: u64 = 0xFA17_FA17;

    #[test]
    fn injected_faults_hit_exact_evaluation_indices() {
        let _lock = FAULTS.lock().unwrap();
        let calls = AtomicUsize::new(0);
        let space = ParameterSpace::new().with("a", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, |c: &Calibration| {
            calls.fetch_add(1, Ordering::SeqCst);
            c.values[0]
        });
        crate::fault::install(
            crate::fault::FaultPlan::new()
                .with_seeded_fault(crate::fault::FaultKind::Panic, 1, FAULT_SEED)
                .with_seeded_fault(crate::fault::FaultKind::Nan, 3, FAULT_SEED),
        );
        let ev = Evaluator::new(&obj, Budget::Evaluations(8)).with_seed(FAULT_SEED);
        crate::fault::uninstall();
        let batch: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 10.0]).collect();
        let losses = ev.eval_batch(&batch).unwrap();
        assert!(losses[0].is_finite());
        assert_eq!(losses[1], f64::INFINITY);
        assert!(losses[2].is_finite());
        assert_eq!(losses[3], f64::INFINITY);
        assert!(losses[4].is_finite());
        assert_eq!(ev.eval_panics(), 1);
        assert_eq!(ev.eval_nonfinite(), 1);
        let failures = ev.failures();
        assert_eq!(failures[0].0, 1);
        match &failures[0].1 {
            EvalFailure::Panic { message } => {
                assert!(message.contains("injected fault"), "{message}");
                assert!(message.contains("evaluation 1"), "{message}");
            }
            other => panic!("expected injected Panic, got {other:?}"),
        }
        assert_eq!(failures[1].0, 3);
        // The surviving losses are exactly the clean objective's values.
        for (i, &l) in losses.iter().enumerate() {
            if l.is_finite() {
                assert!((l - i as f64 / 10.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn seed_scoped_faults_miss_other_evaluators() {
        let _lock = FAULTS.lock().unwrap();
        let obj = sphere();
        crate::fault::install(crate::fault::FaultPlan::new().with_seeded_fault(
            crate::fault::FaultKind::Panic,
            0,
            FAULT_SEED,
        ));
        let hit = Evaluator::new(&obj, Budget::Evaluations(4)).with_seed(FAULT_SEED);
        let miss = Evaluator::new(&obj, Budget::Evaluations(4)).with_seed(FAULT_SEED ^ 1);
        crate::fault::uninstall();
        assert_eq!(hit.eval(&[0.5, 0.5]), Some(f64::INFINITY));
        assert!(miss.eval(&[0.5, 0.5]).unwrap().is_finite());
        // Plans are snapshotted at construction: an evaluator created
        // after uninstall sees no faults even for the targeted seed.
        let after = Evaluator::new(&obj, Budget::Evaluations(4)).with_seed(FAULT_SEED);
        assert!(after.eval(&[0.5, 0.5]).unwrap().is_finite());
    }

    #[test]
    fn eval_and_eval_batch_share_the_cache() {
        let obj = sphere();
        let ev = Evaluator::new(&obj, Budget::Evaluations(10));
        let batch = vec![vec![0.2, 0.2], vec![0.8, 0.8]];
        let losses = ev.eval_batch(&batch).unwrap();
        assert_eq!(ev.eval(&[0.2, 0.2]), Some(losses[0]));
        assert_eq!(ev.eval(&[0.8, 0.8]), Some(losses[1]));
        assert_eq!(ev.evaluations(), 2);
        assert_eq!(ev.cache_hits(), 2);
    }

    #[test]
    fn signed_zero_calibrations_share_one_cache_entry() {
        // Regression: the key used raw `f64::to_bits`, so a range whose
        // denormalization can produce both -0.0 and +0.0 split one
        // calibration across two entries, double-consuming budget. With
        // `lo: -0.0`, unit -0.0 denormalizes to -0.0 + (-0.0) * 1.0 = -0.0
        // while unit 0.0 gives -0.0 + 0.0 = +0.0: equal calibrations,
        // formerly distinct keys.
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: -0.0, hi: 1.0 });
        let calls = AtomicUsize::new(0);
        let obj = FnObjective::new(space, |c: &Calibration| {
            calls.fetch_add(1, Ordering::SeqCst);
            c.values[0] + 1.0
        });
        // Sanity: the two unit points really produce differently-signed
        // zeros, i.e. the regression vehicle still bites.
        assert_eq!(
            obj.space().denormalize(&[-0.0]).values[0].to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(
            obj.space().denormalize(&[0.0]).values[0].to_bits(),
            0.0f64.to_bits()
        );
        let ev = Evaluator::new(&obj, Budget::Evaluations(10));
        let a = ev.eval(&[-0.0]).unwrap();
        let b = ev.eval(&[0.0]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(ev.evaluations(), 1, "equal calibrations share one entry");
        assert_eq!(ev.cache_hits(), 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nan_component_points_are_evaluated_uncached() {
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let calls = AtomicUsize::new(0);
        let obj = FnObjective::new(space, |_: &Calibration| {
            calls.fetch_add(1, Ordering::SeqCst);
            f64::NAN
        });
        let ev = Evaluator::new(&obj, Budget::Evaluations(4));
        // A NaN unit coordinate denormalizes to a NaN calibration value:
        // no canonical key, so each proposal re-invokes (and each is
        // quarantined individually, consuming budget).
        assert_eq!(ev.eval(&[f64::NAN]), Some(f64::INFINITY));
        assert_eq!(ev.eval(&[f64::NAN]), Some(f64::INFINITY));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(ev.evaluations(), 2);
        assert_eq!(ev.cache_hits(), 0);
    }

    /// Serializes tests that install the process-global cache directory.
    static CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Collision-free temp cache directory (tests run concurrently).
    fn tmp_cache_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "simcal-budget-cache-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Construct an evaluator with the disk cache rooted at `dir`,
    /// leaving the process-global state clean afterwards.
    fn evaluator_with_cache<'a>(
        obj: &'a dyn Objective,
        budget: Budget,
        seed: u64,
        dir: &PathBuf,
    ) -> Evaluator<'a> {
        cache::install(dir);
        let ev = Evaluator::new(obj, budget).with_seed(seed);
        cache::uninstall();
        ev
    }

    #[test]
    fn repeated_run_is_served_entirely_from_disk() {
        let _lock = CACHE_LOCK.lock().unwrap();
        let dir = tmp_cache_dir("repeat");
        let fp = crate::cache::CacheFingerprint::of("sphere-l1", "toy-v1", 7);
        let calls = AtomicUsize::new(0);
        let space = ParameterSpace::new()
            .with("a", ParamKind::Continuous { lo: -1.0, hi: 1.0 })
            .with("b", ParamKind::Continuous { lo: -1.0, hi: 1.0 });
        let obj = FnObjective::new(space, |c: &Calibration| {
            calls.fetch_add(1, Ordering::SeqCst);
            c.values.iter().map(|v| v * v).sum()
        })
        .with_cache_fingerprint(fp);
        let points = vec![
            vec![0.9, 0.9],
            vec![0.5, 0.5],
            vec![0.3, 0.8],
            vec![0.1, 0.2],
        ];
        let run = |seed: u64| {
            let ev = evaluator_with_cache(&obj, Budget::Evaluations(6), seed, &dir);
            let mut losses = ev.eval_batch(&points).unwrap();
            losses.push(ev.eval(&[0.7, 0.6]).unwrap());
            (
                losses,
                ev.evaluations(),
                ev.cache_hits(),
                ev.cache_misses(),
                ev.trace()
                    .iter()
                    .map(|t| (t.evaluations, t.best_loss.to_bits()))
                    .collect::<Vec<_>>(),
                ev.best().map(|(l, u, c)| (l.to_bits(), u, c)),
            )
        };
        let cold = run(7);
        let invocations = calls.load(Ordering::SeqCst);
        assert_eq!(invocations, 5);
        // Same fingerprint + seed: the warm run replays every outcome
        // from disk with zero objective invocations and identical
        // deterministic results.
        let warm = run(7);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            invocations,
            "zero invocations"
        );
        assert_eq!(warm, cold);
        // A different seed reads a different shard: fully cold.
        let other = run(8);
        assert_eq!(calls.load(Ordering::SeqCst), invocations + 5);
        assert_eq!(other.0, cold.0, "the objective is seed-independent");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_failures_replay_from_disk() {
        let _lock = CACHE_LOCK.lock().unwrap();
        let dir = tmp_cache_dir("quarantine");
        let fp = crate::cache::CacheFingerprint::of("trapdoor", "toy-v1", 1);
        let calls = AtomicUsize::new(0);
        let make = || {
            let space = ParameterSpace::new()
                .with("a", ParamKind::Continuous { lo: -1.0, hi: 1.0 })
                .with("b", ParamKind::Continuous { lo: -1.0, hi: 1.0 });
            FnObjective::new(space, |c: &Calibration| {
                calls.fetch_add(1, Ordering::SeqCst);
                if c.values[0] > 0.5 {
                    panic!("simulator diverged at a={}", c.values[0]);
                }
                if c.values[1] > 0.5 {
                    return f64::NAN;
                }
                c.values.iter().map(|v| v * v).sum()
            })
            .with_cache_fingerprint(fp)
        };
        let obj = make();
        let batch = vec![vec![0.25, 0.25], vec![0.95, 0.25], vec![0.25, 0.95]];
        let run = |ev: &Evaluator<'_>| {
            let losses = ev.eval_batch(&batch).unwrap();
            // Compare failures by bit pattern: `PartialEq` on a NaN
            // `NonFinite` loss is always false.
            let failures: Vec<(usize, u8, String, u64)> = ev
                .failures()
                .iter()
                .map(|(i, f)| match f {
                    EvalFailure::Panic { message } => (*i, 0, message.clone(), 0),
                    EvalFailure::NonFinite { loss } => (*i, 1, String::new(), loss.to_bits()),
                    EvalFailure::BudgetExhausted => (*i, 2, String::new(), 0),
                })
                .collect();
            (losses, ev.eval_panics(), ev.eval_nonfinite(), failures)
        };
        let cold_ev = evaluator_with_cache(&obj, Budget::Evaluations(10), 3, &dir);
        let cold = run(&cold_ev);
        let invocations = calls.load(Ordering::SeqCst);
        assert_eq!(cold.1, 1);
        assert_eq!(cold.2, 1);
        let warm_ev = evaluator_with_cache(&obj, Budget::Evaluations(10), 3, &dir);
        let warm = run(&warm_ev);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            invocations,
            "failures replay without re-invoking the broken simulator"
        );
        assert_eq!(warm, cold, "losses, counters, and failure records match");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_are_not_persisted_to_disk() {
        let _lock = CACHE_LOCK.lock().unwrap();
        let _fault_lock = FAULTS.lock().unwrap();
        let dir = tmp_cache_dir("nofault");
        let fp = crate::cache::CacheFingerprint::of("clean", "toy-v1", 2);
        let calls = AtomicUsize::new(0);
        let space = ParameterSpace::new().with("a", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, |c: &Calibration| {
            calls.fetch_add(1, Ordering::SeqCst);
            c.values[0]
        })
        .with_cache_fingerprint(fp);
        let batch: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64 / 10.0]).collect();
        // Cold run with an injected panic at evaluation 1.
        crate::fault::install(crate::fault::FaultPlan::new().with_seeded_fault(
            crate::fault::FaultKind::Panic,
            1,
            FAULT_SEED,
        ));
        cache::install(&dir);
        let faulted = Evaluator::new(&obj, Budget::Evaluations(8)).with_seed(FAULT_SEED);
        cache::uninstall();
        crate::fault::uninstall();
        let losses = faulted.eval_batch(&batch).unwrap();
        assert_eq!(losses[1], f64::INFINITY);
        let invocations = calls.load(Ordering::SeqCst);
        // Warm run without faults: the three clean outcomes replay from
        // disk, but the fault-synthesized slot was never persisted, so it
        // is evaluated for real this time and yields its true loss.
        let clean = evaluator_with_cache(&obj, Budget::Evaluations(8), FAULT_SEED, &dir);
        let warm = clean.eval_batch(&batch).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), invocations + 1);
        assert!((warm[1] - 0.1).abs() < 1e-12, "the poisoned slot healed");
        assert_eq!(clean.eval_panics(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
