//! Multi-fidelity evaluation: deterministic scenario subsampling.
//!
//! Successive-halving sweeps (lodsel) start every calibration run on a
//! *cheap rung* — a small evaluation budget over a small subset of the
//! ground-truth scenario set — and only the survivors graduate to the
//! full set. This module supplies the two ingredients that make cheap
//! rungs sound:
//!
//! * [`subset_indices`]: a deterministic, seed-derived uniform k-subset
//!   of scenario indices. Membership is keyed by `(seed, rung)` only, so
//!   a resumed sweep rebuilds bit-for-bit the same subset a fresh sweep
//!   evaluates — the resume-equals-fresh contract extends to every rung.
//! * [`SubsampledObjective`]: an [`Objective`] over that subset whose
//!   loss is an *unbiased estimator* of the full objective's loss for
//!   mean-aggregating losses: each scenario is included with equal
//!   probability, so the expectation of the subset mean over subset
//!   draws equals the full-set mean (see the exhaustive-enumeration
//!   proptest). Max-style aggregations are biased low on subsets — rung
//!   losses then underestimate, which is still a valid *ranking* signal
//!   but not an estimate; the final rung always runs the full set either
//!   way.
//!
//! The subset evaluation paths mirror [`SimulationObjective`] exactly
//! (same fan-out shapes, same fixed-order reductions), so at full
//! fidelity — `k == n` — the subsampled loss is bit-for-bit the full
//! loss.
//!
//! [`SimulationObjective`]: crate::objective::SimulationObjective

use crate::loss::Loss;
use crate::objective::{Objective, Simulator};
use crate::param::{Calibration, ParameterSpace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The fidelity one rung of a multi-fidelity sweep evaluates at: which
/// fraction of the ground-truth scenario set a calibration sees.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fidelity {
    /// Rung index (0 = cheapest). Part of the subset-membership key, so
    /// distinct rungs of one run draw independent subsets.
    pub rung: usize,
    /// Subset-size denominator: a rung targets `ceil(n / scenario_denom)`
    /// of the `n` scenarios. `1` means full fidelity.
    pub scenario_denom: usize,
    /// Lower bound on the subset size (clamped to the dataset size), so
    /// tiny datasets are never subsampled down to a meaningless handful.
    pub min_scenarios: usize,
}

impl Fidelity {
    /// Full fidelity: the whole scenario set.
    pub fn full() -> Self {
        Self {
            rung: 0,
            scenario_denom: 1,
            min_scenarios: 1,
        }
    }

    /// Subset size this fidelity selects out of `n` scenarios.
    pub fn subset_len(&self, n: usize) -> usize {
        let denom = self.scenario_denom.max(1);
        n.min(self.min_scenarios.max(1).max(n.div_ceil(denom)))
    }

    /// Whether this fidelity keeps all `n` scenarios. Callers should then
    /// evaluate the full objective directly (identical results, shared
    /// loss-cache entries).
    pub fn is_full(&self, n: usize) -> bool {
        self.subset_len(n) == n
    }

    /// The scenario indices this fidelity selects out of `n`, for the
    /// run identified by `seed`. Deterministic in `(n, seed, rung)`.
    pub fn indices(&self, n: usize, seed: u64) -> Vec<usize> {
        subset_indices(n, self.subset_len(n), seed, self.rung)
    }
}

/// One step of the splitmix64 generator — tiny, seedable, and with
/// no state beyond a `u64`, so subset membership is a pure function of
/// its key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic uniform `k`-subset of `0..n`, sorted ascending.
///
/// The draw is a partial Fisher–Yates shuffle over a splitmix64 stream
/// keyed by `(seed, rung)` — every scenario is selected with probability
/// `k / n` (up to the negligible `n / 2^64` modulo bias), which is what
/// makes the subset mean an unbiased estimator of the full mean. Sorting
/// restores dataset order so downstream aggregation reduces in the same
/// order as the full objective.
///
/// # Panics
/// Panics if `k > n`.
pub fn subset_indices(n: usize, k: usize, seed: u64, rung: usize) -> Vec<usize> {
    assert!(k <= n, "cannot select {k} of {n} scenarios");
    let mut state = seed ^ (rung as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + (splitmix64(&mut state) % (n - i) as u64) as usize;
        pool.swap(i, j);
    }
    let mut chosen = pool;
    chosen.truncate(k);
    chosen.sort_unstable();
    chosen
}

/// Content tag of a concrete subset, for loss-cache fingerprints: two
/// different subsets of the same dataset must never share cache entries.
pub fn subset_tag(indices: &[usize], full_len: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(full_len as u64);
    mix(indices.len() as u64);
    for &i in indices {
        mix(i as u64);
    }
    h
}

/// [`Objective`] over a deterministic subset of a ground-truth dataset —
/// the cheap-rung counterpart of
/// [`SimulationObjective`](crate::objective::SimulationObjective), with
/// the same evaluation paths over fewer simulator invocations.
pub struct SubsampledObjective<'a, S: Simulator, L> {
    simulator: &'a S,
    subset: Vec<&'a S::Scenario>,
    full_len: usize,
    tag: u64,
    loss: L,
    space: ParameterSpace,
    fingerprint: Option<crate::cache::CacheFingerprint>,
}

impl<'a, S: Simulator, L> SubsampledObjective<'a, S, L> {
    /// Assemble a subset objective over `dataset[indices]`.
    ///
    /// # Panics
    /// Panics if `indices` is empty or contains an out-of-range index.
    pub fn new(
        simulator: &'a S,
        dataset: &'a [S::Scenario],
        indices: &[usize],
        loss: L,
        space: ParameterSpace,
    ) -> Self {
        assert!(!indices.is_empty(), "scenario subset must be non-empty");
        let subset: Vec<&'a S::Scenario> = indices.iter().map(|&i| &dataset[i]).collect();
        Self {
            simulator,
            subset,
            full_len: dataset.len(),
            tag: subset_tag(indices, dataset.len()),
            loss,
            space,
            fingerprint: None,
        }
    }

    /// Declare this objective's content address, enabling the persistent
    /// loss cache ([`crate::cache`]) for its evaluations. The caller must
    /// fold [`SubsampledObjective::tag`] into the fingerprint so subset
    /// losses never collide with full-set losses (or other subsets').
    pub fn with_cache_fingerprint(mut self, fingerprint: crate::cache::CacheFingerprint) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }

    /// Content tag of the concrete subset (see [`subset_tag`]).
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Scenarios in the subset.
    pub fn subset_len(&self) -> usize {
        self.subset.len()
    }

    /// Scenarios in the full dataset this subset was drawn from.
    pub fn full_len(&self) -> usize {
        self.full_len
    }
}

impl<'a, S, L> Objective for SubsampledObjective<'a, S, L>
where
    S: Simulator,
    L: Loss<S::Output>,
{
    fn space(&self) -> &ParameterSpace {
        &self.space
    }

    fn cache_fingerprint(&self) -> Option<crate::cache::CacheFingerprint> {
        self.fingerprint
    }

    fn loss(&self, calibration: &Calibration) -> f64 {
        let outputs: Vec<S::Output> = self
            .subset
            .iter()
            .map(|scenario| self.simulator.run(scenario, calibration))
            .collect();
        self.loss.aggregate(&outputs)
    }

    fn par_loss(&self, calibration: &Calibration) -> f64 {
        let outputs: Vec<S::Output> = self
            .subset
            .par_iter()
            .map(|scenario| self.simulator.run(scenario, calibration))
            .collect();
        self.loss.aggregate(&outputs)
    }

    fn par_loss_batch(&self, calibrations: &[Calibration]) -> Vec<f64> {
        let n_scenarios = self.subset.len();
        let product: Vec<(usize, usize)> = (0..calibrations.len())
            .flat_map(|c| (0..n_scenarios).map(move |s| (c, s)))
            .collect();
        let outputs: Vec<S::Output> = product
            .par_iter()
            .map(|&(c, s)| self.simulator.run(self.subset[s], &calibrations[c]))
            .collect();
        outputs
            .chunks(n_scenarios)
            .map(|per_point| self.loss.aggregate(per_point))
            .collect()
    }

    fn try_par_loss_batch(&self, calibrations: &[Calibration]) -> Vec<Result<f64, String>> {
        let n_scenarios = self.subset.len();
        let product: Vec<(usize, usize)> = (0..calibrations.len())
            .flat_map(|c| (0..n_scenarios).map(move |s| (c, s)))
            .collect();
        let outputs: Vec<Result<S::Output, String>> = product
            .par_iter()
            .map(|&(c, s)| {
                crate::fault::guard(|| self.simulator.run(self.subset[s], &calibrations[c]))
            })
            .collect();
        let mut outputs = outputs.into_iter();
        (0..calibrations.len())
            .map(|_| {
                let mut per_point: Vec<S::Output> = Vec::with_capacity(n_scenarios);
                let mut failed: Option<String> = None;
                for _ in 0..n_scenarios {
                    match outputs.next().expect("one output per product item") {
                        Ok(output) => per_point.push(output),
                        Err(message) => {
                            failed.get_or_insert(message);
                        }
                    }
                }
                match failed {
                    None => crate::fault::guard(|| self.loss.aggregate(&per_point)),
                    Some(message) => Err(message),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Agg, ElementMix, ScenarioError, StructuredLoss};
    use crate::objective::SimulationObjective;
    use crate::param::ParamKind;
    use std::collections::HashSet;

    struct Toy;
    impl Simulator for Toy {
        type Scenario = f64;
        type Output = ScenarioError;
        fn run(&self, scenario: &f64, calibration: &Calibration) -> ScenarioError {
            ScenarioError::scalar_only(crate::loss::relative_error(
                *scenario,
                calibration.values[0],
            ))
        }
    }

    fn space1() -> ParameterSpace {
        ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 100.0 })
    }

    fn avg_loss() -> StructuredLoss {
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1")
    }

    #[test]
    fn subsets_are_deterministic_uniform_and_sorted() {
        let a = subset_indices(10, 4, 42, 1);
        let b = subset_indices(10, 4, 42, 1);
        assert_eq!(a, b, "same key, same subset");
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        assert!(a.iter().all(|&i| i < 10));

        // Different seeds and different rungs draw different subsets
        // (statistically certain for these sizes).
        assert_ne!(subset_indices(10, 4, 42, 1), subset_indices(10, 4, 43, 1));
        assert_ne!(subset_indices(10, 4, 42, 1), subset_indices(10, 4, 42, 2));

        // Degenerate sizes.
        assert_eq!(subset_indices(5, 5, 7, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(subset_indices(5, 0, 7, 0), Vec::<usize>::new());

        // Every index is reachable (a stuck generator would never select
        // some positions).
        let mut seen = HashSet::new();
        for seed in 0..200u64 {
            seen.extend(subset_indices(8, 2, seed, 0));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversized_subset_is_rejected() {
        subset_indices(3, 4, 0, 0);
    }

    #[test]
    fn fidelity_subset_len_applies_denominator_and_floor() {
        let f = Fidelity {
            rung: 0,
            scenario_denom: 4,
            min_scenarios: 3,
        };
        assert_eq!(f.subset_len(20), 5); // ceil(20/4)
        assert_eq!(f.subset_len(8), 3); // floor wins over ceil(8/4)=2
        assert_eq!(f.subset_len(2), 2); // clamped to the dataset
        assert!(!f.is_full(20));
        assert!(f.is_full(2));
        assert!(Fidelity::full().is_full(1000));
    }

    #[test]
    fn full_fidelity_subset_loss_is_bit_for_bit_the_full_loss() {
        let dataset = vec![10.0, 20.0, 30.0, 40.0];
        let full = SimulationObjective::new(&Toy, &dataset, avg_loss(), space1());
        let indices: Vec<usize> = (0..dataset.len()).collect();
        let sub = SubsampledObjective::new(&Toy, &dataset, &indices, avg_loss(), space1());
        let c = Calibration::new(vec![25.0]);
        assert_eq!(full.loss(&c).to_bits(), sub.loss(&c).to_bits());
        assert_eq!(full.par_loss(&c).to_bits(), sub.par_loss(&c).to_bits());
        let batch = vec![Calibration::new(vec![10.0]), Calibration::new(vec![35.0])];
        let fb = full.par_loss_batch(&batch);
        let sb = sub.par_loss_batch(&batch);
        assert_eq!(fb[0].to_bits(), sb[0].to_bits());
        assert_eq!(fb[1].to_bits(), sb[1].to_bits());
    }

    #[test]
    fn expected_subset_loss_over_all_subsets_is_the_full_loss() {
        // Exhaustive enumeration of every C(n, k) subset: the average of
        // the subset losses equals the full loss for a mean-aggregating
        // loss — the unbiasedness contract cheap rungs rely on.
        let dataset = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let full = SimulationObjective::new(&Toy, &dataset, avg_loss(), space1());
        let c = Calibration::new(vec![27.0]);
        let full_loss = full.loss(&c);
        for k in 1..=dataset.len() {
            let mut total = 0.0;
            let mut count = 0usize;
            for combo in combinations(dataset.len(), k) {
                let sub = SubsampledObjective::new(&Toy, &dataset, &combo, avg_loss(), space1());
                total += sub.loss(&c);
                count += 1;
            }
            let expected = total / count as f64;
            assert!(
                (expected - full_loss).abs() < 1e-12,
                "k={k}: E[subset loss]={expected} != full {full_loss}"
            );
        }
    }

    #[test]
    fn subset_tags_distinguish_subsets() {
        let a = subset_tag(&[0, 1, 2], 10);
        assert_eq!(a, subset_tag(&[0, 1, 2], 10));
        assert_ne!(a, subset_tag(&[0, 1, 3], 10));
        assert_ne!(a, subset_tag(&[0, 1, 2], 11));
        assert_ne!(subset_tag(&[0, 1], 10), subset_tag(&[0, 1, 2], 10));
    }

    /// All k-combinations of 0..n, in lexicographic order.
    fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        if k == 0 || k > n {
            return out;
        }
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            out.push(combo.clone());
            // Advance: rightmost slot that can still move right.
            let mut i = k;
            while i > 0 && combo[i - 1] == i - 1 + n - k {
                i -= 1;
            }
            if i == 0 {
                return out;
            }
            combo[i - 1] += 1;
            for j in i..k {
                combo[j] = combo[j - 1] + 1;
            }
        }
    }
}
