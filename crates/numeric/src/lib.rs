//! Dense linear algebra, statistics, and seeded sampling utilities.
//!
//! This crate is the numerical substrate for the `lodcal` workspace. It
//! provides exactly what the calibration framework and the surrogate models
//! need — a small dense [`Matrix`] type with Cholesky
//! factorization, descriptive statistics over slices, distance metrics, and
//! deterministic random sampling helpers — with no external BLAS/LAPACK
//! dependency so that the workspace builds anywhere.
//!
//! All randomness flows through explicit [`rand::rngs::StdRng`] instances
//! seeded by the caller, which is what makes every experiment in the
//! workspace reproducible bit-for-bit.

pub mod mat;
pub mod rng;
pub mod special;
pub mod stats;

pub use mat::{Cholesky, Matrix};
pub use rng::{lognormal, normal, rng_from_seed, truncated_normal};
pub use special::{erf, norm_cdf, norm_pdf};
pub use stats::{
    argmax, argmin, explained_variance, l1_distance, l2_distance, max, mean, median, min, quantile,
    relative_l1_distance, std_dev, variance,
};
