//! Special functions: error function and standard-normal PDF/CDF.
//!
//! Needed by the Expected-Improvement acquisition function of the Bayesian
//! optimizer. `erf` uses the Abramowitz & Stegun 7.1.26 rational
//! approximation (|error| < 1.5e-7), which is far below the tolerance any
//! acquisition maximization needs.

/// Error function, via Abramowitz & Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal probability density function.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            assert!((erf(x) + erf(-x)).abs() < 1e-7);
            assert!(erf(x).abs() <= 1.0);
        }
    }

    #[test]
    fn norm_cdf_symmetry_and_known_points() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        for i in -30..=30 {
            let x = i as f64 / 10.0;
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn norm_pdf_peak_and_decay() {
        assert!((norm_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!(norm_pdf(5.0) < 1e-5);
        assert!((norm_pdf(1.0) - norm_pdf(-1.0)).abs() < 1e-15);
    }

    #[test]
    fn norm_cdf_monotone() {
        let mut prev = 0.0;
        for i in -50..=50 {
            let c = norm_cdf(i as f64 / 10.0);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }
}
