//! A small dense, row-major matrix with just enough factorization support
//! for Gaussian-process regression: Cholesky decomposition, triangular
//! solves, and symmetric positive-definite linear system solution.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// A `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Build a symmetric matrix by evaluating `f(i, j)` for `j <= i` and
    /// mirroring. Useful for kernel/Gram matrices.
    pub fn from_symmetric_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = f(i, j);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in matvec");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Add `value` to every diagonal entry (in place). Used to add jitter /
    /// observation noise to kernel matrices.
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Cholesky factorization `self = L * L^T` for a symmetric
    /// positive-definite matrix. Returns `None` when the matrix is not
    /// (numerically) positive definite.
    pub fn cholesky(&self) -> Option<Cholesky> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Some(Cholesky { n, l })
    }

    /// Solve the symmetric positive-definite system `self * x = b` via
    /// Cholesky, retrying with exponentially growing diagonal jitter when
    /// the matrix is numerically semi-definite. Returns `None` only if even
    /// heavy regularization fails.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.rows, "rhs length must equal matrix rows");
        let mut jitter = 0.0;
        for attempt in 0..8 {
            let mut m = self.clone();
            if attempt > 0 {
                jitter = if jitter == 0.0 { 1e-10 } else { jitter * 100.0 };
                m.add_diagonal(jitter);
            }
            if let Some(ch) = m.cholesky() {
                return Some(ch.solve(b));
            }
        }
        None
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `L[i][j]` (zero above the diagonal).
    #[inline]
    pub fn l(&self, i: usize, j: usize) -> f64 {
        if j > i {
            0.0
        } else {
            self.l[i * self.n + j]
        }
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                sum -= self.l[i * n + j] * yj;
            }
            y[i] = sum / self.l[i * n + i];
        }
        y
    }

    /// Solve `L^T x = y` (backward substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.n);
        let n = self.n;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[j * n + i] * xj;
            }
            x[i] = sum / self.l[i * n + i];
        }
        x
    }

    /// Solve `A x = b` where `A = L L^T`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log(det(A)) = 2 * sum(log(diag(L)))`.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_solves_trivially() {
        let m = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        let x = m.solve_spd(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!(approx(*xi, *bi, 1e-12));
        }
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let m = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let ch = m.cholesky().unwrap();
        assert!(approx(ch.l(0, 0), 2.0, 1e-12));
        assert!(approx(ch.l(1, 0), 1.0, 1e-12));
        assert!(approx(ch.l(1, 1), 2.0f64.sqrt(), 1e-12));
        assert!(approx(ch.l(0, 1), 0.0, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(m.cholesky().is_none());
    }

    #[test]
    fn solve_spd_roundtrip() {
        let m = Matrix::from_vec(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]);
        let x_true = vec![1.0, -1.0, 2.0];
        let b = m.matvec(&x_true);
        let x = m.solve_spd(&b).unwrap();
        for (a, e) in x.iter().zip(&x_true) {
            assert!(approx(*a, *e, 1e-10), "{a} vs {e}");
        }
    }

    #[test]
    fn solve_spd_recovers_with_jitter_on_semidefinite() {
        // Rank-1 matrix: xx^T with x = (1, 1); semi-definite. The jitter
        // retry must still produce a finite solution.
        let m = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let x = m.solve_spd(&[2.0, 2.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_det_matches_direct_determinant() {
        let m = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let ch = m.cholesky().unwrap();
        // det = 4*3 - 2*2 = 8
        assert!(approx(ch.log_det(), 8.0f64.ln(), 1e-12));
    }

    #[test]
    fn from_symmetric_fn_is_symmetric() {
        let m = Matrix::from_symmetric_fn(5, |i, j| (i * 7 + j * 3) as f64);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
    }

    #[test]
    fn matvec_known_product() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(v, vec![-2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_panics_on_dim_mismatch() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
