//! Descriptive statistics and distance metrics over `f64` slices.
//!
//! The calibration framework aggregates simulation errors with these
//! helpers; the ground-truth emulators use them to summarize repeated
//! measurements. All functions are total over finite inputs and document
//! their behaviour on empty slices.

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns `0.0` for slices of length < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value. Returns `f64::INFINITY` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value. Returns `f64::NEG_INFINITY` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Index of the smallest element, or `None` for an empty slice.
/// NaN elements are never selected.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        if best.is_none_or(|(_, b)| x < b) {
            best = Some((i, x));
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the largest element, or `None` for an empty slice.
/// NaN elements are never selected.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        if best.is_none_or(|(_, b)| x > b) {
            best = Some((i, x));
        }
    }
    best.map(|(i, _)| i)
}

/// Median (by sorting a copy). Returns `0.0` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`. Returns `0.0` for an
/// empty slice.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let frac = pos - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

/// L1 distance `sum |a_i - b_i|`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// L2 (Euclidean) distance.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_distance length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Relative L1 distance between a candidate calibration `a` and a reference
/// calibration `r`: `sum_i |a_i - r_i| / max(|r_i|, eps)`.
///
/// This is the paper's *calibration error* metric (Section 3): the relative
/// L1 distance between a computed calibration and the known best calibration
/// of a synthetic-benchmarking run. Reported values in Tables 3 and 5 are
/// this quantity (scaled by 100 by the reporting layer).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn relative_l1_distance(a: &[f64], r: &[f64]) -> f64 {
    assert_eq!(a.len(), r.len(), "relative_l1_distance length mismatch");
    a.iter()
        .zip(r)
        .map(|(x, y)| (x - y).abs() / y.abs().max(1e-12))
        .sum()
}

/// Explained-variance ratio used by case study #2 (Section 6.3.2):
/// `a / b` where `a` is the L1 distance between the measured samples and the
/// (single, deterministic) model value, and `b` is the L1 distance between
/// the samples and their own mean.
///
/// A value close to 1 means the model value is about as representative of
/// the samples as their mean is; larger values mean the model misses the
/// sample cloud. Returns `a / eps`-style large values when the samples have
/// (near-)zero dispersion but the model is off; returns 1.0 when both
/// dispersion and error are ~0.
pub fn explained_variance(samples: &[f64], model_value: f64) -> f64 {
    if samples.is_empty() {
        return f64::INFINITY;
    }
    let m = mean(samples);
    let a: f64 = samples.iter().map(|s| (s - model_value).abs()).sum();
    let b: f64 = samples.iter().map(|s| (s - m).abs()).sum();
    if b < 1e-12 {
        if a < 1e-12 {
            1.0
        } else {
            a / 1e-12
        }
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_slices_are_handled() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 1.0 / 3.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn argmin_skips_nan() {
        assert_eq!(argmin(&[f64::NAN, 2.0, 1.0]), Some(2));
        assert_eq!(argmax(&[f64::NAN, 2.0, 1.0]), Some(1));
        assert_eq!(argmin(&[f64::NAN]), None);
    }

    #[test]
    fn distances_known_values() {
        assert_eq!(l1_distance(&[1.0, 2.0], &[4.0, 0.0]), 5.0);
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(relative_l1_distance(&[2.0, 1.0], &[1.0, 2.0]), 1.5);
    }

    #[test]
    fn explained_variance_perfect_model_on_noisy_samples() {
        // Samples symmetric around 10: the mean IS 10, so a model value of
        // 10 explains exactly as much as the mean: ratio 1.
        let samples = [9.0, 11.0, 8.0, 12.0];
        assert!((explained_variance(&samples, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn explained_variance_bad_model_is_large() {
        let samples = [9.0, 11.0];
        assert!(explained_variance(&samples, 100.0) > 10.0);
    }

    #[test]
    fn explained_variance_degenerate_samples() {
        assert_eq!(explained_variance(&[5.0, 5.0], 5.0), 1.0);
        assert!(explained_variance(&[5.0, 5.0], 6.0) > 1e6);
        assert_eq!(explained_variance(&[], 1.0), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn prop_mean_bounded_by_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let m = mean(&xs);
            prop_assert!(m >= min(&xs) - 1e-9 && m <= max(&xs) + 1e-9);
        }

        #[test]
        fn prop_l1_triangle_inequality(
            a in proptest::collection::vec(-1e3f64..1e3, 5),
            b in proptest::collection::vec(-1e3f64..1e3, 5),
            c in proptest::collection::vec(-1e3f64..1e3, 5),
        ) {
            prop_assert!(l1_distance(&a, &c) <= l1_distance(&a, &b) + l1_distance(&b, &c) + 1e-9);
        }

        #[test]
        fn prop_l2_symmetry_and_identity(
            a in proptest::collection::vec(-1e3f64..1e3, 4),
            b in proptest::collection::vec(-1e3f64..1e3, 4),
        ) {
            prop_assert!((l2_distance(&a, &b) - l2_distance(&b, &a)).abs() < 1e-9);
            prop_assert!(l2_distance(&a, &a) < 1e-9);
        }

        #[test]
        fn prop_quantile_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
            let q25 = quantile(&xs, 0.25);
            let q50 = quantile(&xs, 0.50);
            let q75 = quantile(&xs, 0.75);
            prop_assert!(q25 <= q50 + 1e-9 && q50 <= q75 + 1e-9);
        }

        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e4f64..1e4, 0..50)) {
            prop_assert!(variance(&xs) >= 0.0);
        }

        #[test]
        fn prop_relative_l1_zero_iff_equal(r in proptest::collection::vec(0.1f64..1e3, 1..10)) {
            prop_assert!(relative_l1_distance(&r, &r) < 1e-12);
        }
    }
}
