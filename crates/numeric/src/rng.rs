//! Deterministic random sampling helpers.
//!
//! Every stochastic component of the workspace (ground-truth noise,
//! search algorithms, tree surrogates) draws from a [`rand::rngs::StdRng`]
//! seeded explicitly by the caller. This module adds the continuous
//! distributions the workspace needs without pulling in `rand_distr`:
//! normal (Box–Muller), lognormal, and truncated normal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Sample `N(mean, std^2)` via the Box–Muller transform.
///
/// # Panics
/// Panics if `std` is negative.
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    if std == 0.0 {
        return mean;
    }
    // Box–Muller: u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std * z
}

/// Sample a lognormal variate whose *underlying normal* has the given mean
/// and standard deviation (i.e. `exp(N(mu, sigma^2))`).
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample `N(mean, std^2)` truncated to `[lo, hi]` by rejection, falling
/// back to clamping after 64 rejections (relevant only for extreme
/// truncations).
///
/// # Panics
/// Panics if `lo > hi`.
pub fn truncated_normal(rng: &mut impl Rng, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "invalid truncation interval");
    for _ in 0..64 {
        let x = normal(rng, mean, std);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, std).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn normal_zero_std_is_deterministic() {
        let mut rng = rng_from_seed(7);
        assert_eq!(normal(&mut rng, 3.5, 0.0), 3.5);
    }

    #[test]
    fn normal_moments_are_approximately_right() {
        let mut rng = rng_from_seed(123);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = crate::stats::mean(&xs);
        let std = crate::stats::std_dev(&xs);
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((std - 2.0).abs() < 0.05, "std {std}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = rng_from_seed(5);
        for _ in 0..1000 {
            assert!(lognormal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = rng_from_seed(9);
        for _ in 0..1000 {
            let x = truncated_normal(&mut rng, 0.0, 5.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_extreme_truncation_clamps() {
        // Mean far outside the interval: rejection will fail, clamp kicks in.
        let mut rng = rng_from_seed(11);
        let x = truncated_normal(&mut rng, 1000.0, 0.01, 0.0, 1.0);
        assert!((0.0..=1.0).contains(&x));
    }
}
