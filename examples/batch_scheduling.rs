//! Case study #3 in miniature: calibrate a batch-scheduling simulator
//! (EASY backfilling) against emulated production traces and compare two
//! levels of detail — the paper's methodology applied to the domain its
//! conclusion names as future work.
//!
//! ```text
//! cargo run --release --example batch_scheduling
//! ```

use lodcal::batchsim::prelude::*;
use lodcal::simcal::prelude::*;

fn main() {
    // Emulated ground truth: two workload intensities on a 64-node
    // cluster managed by a production-style RJMS (30s scheduling cycle,
    // dispatch overheads, interference, runtime noise).
    let cfg = BatchEmulatorConfig::default();
    // Short-to-medium jobs under arrival pressure so per-job waits (where
    // the hidden 30s scheduling cycle lives) are a visible share of the
    // turnaround — the same workload regime as the case3 experiment.
    let mut grid = Vec::new();
    for (i, &interarrival) in [8.0, 20.0, 45.0].iter().enumerate() {
        for (j, &work) in [60.0, 240.0].iter().enumerate() {
            grid.push(WorkloadSpec {
                num_jobs: 80,
                mean_interarrival: interarrival,
                mean_work: work,
                max_nodes_log2: 5,
                seed: 20250706 ^ ((i * 2 + j) as u64) << 8,
            });
        }
    }
    let train = dataset(&grid[..4], &cfg, 3, 20250706);
    let test = dataset(&grid[4..], &cfg, 3, 20250706);
    println!(
        "{} training traces, {} held-out traces",
        train.len(),
        test.len()
    );

    let loss = StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3");
    for version in [
        BatchVersion::lowest_detail(), // instant scheduler, proportional runtimes
        BatchVersion::highest_detail(), // cycle + dispatch + contention
    ] {
        let sim = BatchSimulator::new(version, cfg.total_nodes);
        let obj = objective(&sim, &train, loss.clone());
        let result = (0..3u64)
            .map(|r| {
                Calibrator::bo_gp(Budget::Evaluations(150), 20250706 ^ r << 32).calibrate(&obj)
            })
            .min_by(|a, b| a.loss.partial_cmp(&b.loss).expect("finite losses"))
            .expect("non-empty restarts");

        // Per-job turnaround error: job waits are where scheduler
        // behaviour lives (trace makespans are dominated by total work).
        let errs: Vec<f64> = test
            .iter()
            .map(|s| {
                let out = sim.simulate(&s.jobs, &result.calibration);
                let e: Vec<f64> = s
                    .turnarounds
                    .iter()
                    .zip(&out.turnarounds)
                    .map(|(&gt, &m)| relative_error(gt, m))
                    .collect();
                lodcal::numeric::mean(&e)
            })
            .collect();
        println!(
            "{:<22} {} params: train loss {:.3}, held-out turnaround error {:.1}%",
            version.label(),
            obj.space().dim(),
            result.loss,
            lodcal::numeric::mean(&errs) * 100.0
        );
    }
    println!("\n(the higher-detail version models the scheduler's periodic cycle and");
    println!(" interference — behaviours the hidden 'production' system really has)");
}
