//! The paper's core use case: calibrate *several* simulator versions —
//! each a different level-of-detail choice — under the same budget, then
//! compare their intrinsic accuracy soundly and pick the one that
//! maximizes utility (a miniature of the paper's Figure 2 workflow).
//!
//! ```text
//! cargo run --release --example compare_levels_of_detail
//! ```

use lodcal::simcal::prelude::*;
use lodcal::wfsim::prelude::*;

fn main() {
    let opts = DatasetOptions {
        repetitions: 2,
        size_indices: vec![0, 1],
        work_indices: vec![0, 3], // one short, one long work value
        footprint_indices: vec![1],
        worker_counts: vec![1, 2, 4],
        ..Default::default()
    };
    let records = dataset_for(AppKind::Genome1000, &opts);
    let (train, test) = split_train_test(&records);
    let train_s = WfScenario::from_records(&train);
    let test_s = WfScenario::from_records(&test);
    let loss = StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1");
    let budget = Budget::Evaluations(80);

    // Three candidate levels of detail: no middleware, HTCondor, and
    // HTCondor + a more detailed network.
    let candidates = [
        SimulatorVersion {
            network: NetworkModel::OneLink,
            storage: StorageModel::SubmitOnly,
            compute: ComputeModel::Direct,
        },
        SimulatorVersion {
            network: NetworkModel::OneLink,
            storage: StorageModel::SubmitOnly,
            compute: ComputeModel::HtCondor,
        },
        SimulatorVersion {
            network: NetworkModel::SharedDedicated,
            storage: StorageModel::AllNodes,
            compute: ComputeModel::HtCondor,
        },
    ];

    let mut best: Option<(f64, String)> = None;
    for version in candidates {
        let simulator = WorkflowSimulator::new(version);
        let obj = objective(&simulator, &train_s, loss.clone());
        let result = Calibrator::bo_gp(budget, 7).calibrate(&obj);

        let mut errors = Vec::new();
        for s in &test_s {
            let out = simulator.simulate(&s.workflow, s.n_workers, &result.calibration);
            errors.push(relative_error(s.gt_makespan, out.makespan));
        }
        let avg = lodcal::numeric::mean(&errors) * 100.0;
        println!(
            "{:<32} {} params  train loss {:.3}  held-out error {avg:.1}%",
            version.label(),
            obj.space().dim(),
            result.loss
        );
        if best.as_ref().is_none_or(|(b, _)| avg < *b) {
            best = Some((avg, version.label()));
        }
    }
    let (err, label) = best.expect("at least one candidate");
    println!("\npick: {label} ({err:.1}% held-out makespan error)");
    println!("(because every version was calibrated to the best of its ability under the");
    println!(" same budget, this comparison is sound — the paper's central argument)");
}
