//! Working with workflows as data: generate a WfCommons-style instance,
//! export it to the JSON interchange format, re-import it, and simulate it
//! — the ingestion path a user with real WfCommons instances would follow.
//!
//! ```text
//! cargo run --release --example workflow_json
//! ```

use lodcal::wfsim::prelude::*;

fn main() {
    // Generate a Montage-shaped workflow from Table 1 parameters.
    let spec = WorkflowSpec {
        app: AppKind::Montage,
        num_tasks: 60,
        work_per_task_secs: 1.12,
        data_footprint_bytes: 150e6,
        seed: 2024,
    };
    let workflow = generate(&spec);
    println!(
        "generated {:?}: {} tasks, {} files, depth {}, footprint {:.0} MB",
        workflow.name,
        workflow.num_tasks(),
        workflow.files.len(),
        workflow.depth(),
        workflow.data_footprint() / 1e6
    );

    // Export to the WfCommons-like JSON document and re-import.
    let json = to_json(&workflow);
    println!("JSON document: {} bytes", json.len());
    let reloaded = from_json(&json).expect("roundtrip must parse");
    assert_eq!(workflow, reloaded);
    println!("roundtrip: exact match");

    // Simulate the reloaded instance on 2 workers at a mid-range
    // calibration of the highest-detail simulator version.
    let version = SimulatorVersion::highest_detail();
    let space = version.parameter_space();
    let calibration = space.denormalize(&vec![0.5; space.dim()]);
    let out = WorkflowSimulator::new(version).simulate(&reloaded, 2, &calibration);
    println!(
        "simulated makespan: {:.1}s; first task ran {:.2}s, last {:.2}s",
        out.makespan,
        out.task_times.first().expect("non-empty workflow"),
        out.task_times.last().expect("non-empty workflow"),
    );

    // Show a fragment of the document so the schema is visible.
    let fragment: String = json.lines().take(14).collect::<Vec<_>>().join("\n");
    println!("\ndocument head:\n{fragment}\n  ...");
}
