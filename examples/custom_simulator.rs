//! Plugging your *own* simulator into the calibration framework.
//!
//! The framework makes no assumption about the simulator (paper §4): you
//! implement the `Simulator` trait — the Rust equivalent of overriding the
//! paper's `Simulator.run()` — and everything else (parameter spaces,
//! losses, algorithms, budgets, synthetic benchmarking) comes for free.
//!
//! Here the "simulator" is a tiny analytic M/M/1 queueing model of a
//! service, calibrated against observed mean response times.
//!
//! ```text
//! cargo run --release --example custom_simulator
//! ```

use lodcal::simcal::prelude::*;

/// An observed operating point of the real system: an arrival rate and
/// the measured mean response time at that rate.
struct Observation {
    arrival_rate: f64,
    observed_response_time: f64,
}

/// The simulator: predicts M/M/1 mean response time `1 / (mu - lambda)`
/// plus a fixed network round-trip, from two calibratable parameters.
struct QueueModel;

impl Simulator for QueueModel {
    type Scenario = Observation;
    type Output = ScenarioError;

    fn run(&self, obs: &Observation, calib: &Calibration) -> ScenarioError {
        let service_rate = calib.values[0]; // "service_rate"
        let rtt = calib.values[1]; // "rtt"
        let predicted = if service_rate > obs.arrival_rate {
            1.0 / (service_rate - obs.arrival_rate) + rtt
        } else {
            f64::MAX // saturated: the model predicts divergence
        };
        ScenarioError::scalar_only(relative_error(obs.observed_response_time, predicted))
    }
}

fn main() {
    // "Measurements" of a system whose true parameters are
    // service_rate = 120 req/s and rtt = 3 ms.
    let truth = |lambda: f64| 1.0 / (120.0 - lambda) + 0.003;
    let dataset: Vec<Observation> = [20.0, 50.0, 80.0, 100.0, 110.0]
        .into_iter()
        .map(|arrival_rate| Observation {
            arrival_rate,
            observed_response_time: truth(arrival_rate),
        })
        .collect();

    // Broad, user-specified ranges — the paper's first methodology step.
    let space = ParameterSpace::new()
        .with(
            "service_rate",
            ParamKind::Continuous {
                lo: 1.0,
                hi: 1000.0,
            },
        )
        .with("rtt", ParamKind::Continuous { lo: 0.0, hi: 0.1 });

    let objective = SimulationObjective::new(
        &QueueModel,
        &dataset,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        space,
    );
    let result = Calibrator::bo_gp(Budget::Evaluations(300), 11).calibrate(&objective);

    println!(
        "calibrated in {} evaluations, loss {:.4}",
        result.evaluations, result.loss
    );
    println!(
        "service_rate = {:.1} req/s   (truth: 120)",
        result.calibration.values[0]
    );
    println!(
        "rtt          = {:.4} s      (truth: 0.003)",
        result.calibration.values[1]
    );
}
