//! Case study #2 in miniature: calibrate an SMPI-style simulator against
//! IMB point-to-point benchmark measurements at one scale, then check how
//! the calibration generalizes to a larger scale (the paper's §6.5).
//!
//! ```text
//! cargo run --release --example mpi_calibration
//! ```

use lodcal::mpisim::prelude::*;
use lodcal::simcal::prelude::*;

fn main() {
    // Emulated "Summit" ground truth: noisy transfer-rate samples for
    // PingPing/PingPong/BiRandom at 32 nodes.
    let cfg = MpiEmulatorConfig {
        repetitions: 3,
        ..Default::default()
    };
    let train = dataset(&BenchmarkKind::CALIBRATION_SET, &[32], &cfg, 99);

    let version = MpiSimulatorVersion {
        topology: TopologyModel::BackboneLinks,
        node: NodeModel::Simple,
        protocol: ProtocolModel::FixedChangepoints,
    };
    let simulator = MpiSimulator::new(version);
    let obj = objective(
        &simulator,
        &train,
        MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"),
    );
    let result = Calibrator::bo_gp(Budget::Evaluations(150), 5).calibrate(&obj);
    println!(
        "calibrated {} — training loss {:.3}",
        version.label(),
        result.loss
    );

    // In-sample accuracy (the metric of the paper's Figure 5).
    for s in &train {
        let err = mean_relative_rate_error(&simulator, s, &result.calibration);
        println!(
            "  {:<9} @ {:>3} nodes: {:.1}% transfer-rate error",
            s.benchmark.name(),
            s.n_nodes,
            err * 100.0
        );
    }

    // Generalization to a larger scale (the paper's §6.5 negative result:
    // the hidden platform has scale-dependent behaviour the simulator
    // cannot express, so the error grows).
    for nodes in [64usize, 128] {
        let test = dataset(&BenchmarkKind::CALIBRATION_SET, &[nodes], &cfg, 99);
        let errs: Vec<f64> = test
            .iter()
            .map(|s| mean_relative_rate_error(&simulator, s, &result.calibration))
            .collect();
        println!(
            "generalization to {nodes} nodes: avg {:.1}% error",
            lodcal::numeric::mean(&errs) * 100.0
        );
    }
}
