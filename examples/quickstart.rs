//! Quickstart: calibrate a workflow simulator against emulated ground
//! truth and report its accuracy on held-out executions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lodcal::simcal::prelude::*;
use lodcal::wfsim::prelude::*;

fn main() {
    // 1. Ground truth: emulated "real-world" executions of small forkjoin
    //    benchmarks (in a real study this comes from testbed logs).
    let opts = DatasetOptions {
        repetitions: 2,
        size_indices: vec![0, 1],
        work_indices: vec![1],
        footprint_indices: vec![1],
        worker_counts: vec![1, 2, 4],
        ..Default::default()
    };
    let records = dataset_for(AppKind::Forkjoin, &opts);
    let (train, test) = split_train_test(&records);
    println!(
        "ground truth: {} training / {} testing executions",
        train.len(),
        test.len()
    );

    // 2. Pick a simulator version (a level-of-detail choice) and calibrate
    //    it against the training executions under a fixed budget.
    let version = SimulatorVersion {
        network: NetworkModel::OneLink,
        storage: StorageModel::SubmitOnly,
        compute: ComputeModel::HtCondor,
    };
    let simulator = WorkflowSimulator::new(version);
    let train_scenarios = WfScenario::from_records(&train);
    let obj = objective(
        &simulator,
        &train_scenarios,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
    );
    let result = Calibrator::bo_gp(Budget::Evaluations(60), 42).calibrate(&obj);
    println!(
        "calibrated {} in {} evaluations: training loss {:.3}",
        version.label(),
        result.evaluations,
        result.loss
    );
    for (param, value) in obj.space().params().iter().zip(&result.calibration.values) {
        println!("  {} = {:.4e}", param.name, value);
    }

    // 3. Evaluate the calibrated simulator on the held-out executions.
    let test_scenarios = WfScenario::from_records(&test);
    let mut errors = Vec::new();
    for s in &test_scenarios {
        let out = simulator.simulate(&s.workflow, s.n_workers, &result.calibration);
        errors.push(relative_error(s.gt_makespan, out.makespan));
    }
    println!(
        "held-out makespan error: avg {:.1}% (min {:.1}%, max {:.1}%)",
        lodcal::numeric::mean(&errors) * 100.0,
        lodcal::numeric::min(&errors) * 100.0,
        lodcal::numeric::max(&errors) * 100.0,
    );
}
