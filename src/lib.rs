//! # lodcal — Levels-of-Detail Calibration
//!
//! A Rust reproduction of *"Determining Levels of Detail for Simulators of
//! Parallel and Distributed Computing Systems via Automated Calibration"*
//! (PMBS'25 / SC 2025 workshops).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`simcal`] — the paper's contribution: an automated simulation
//!   calibration framework (parameter spaces, loss functions, search
//!   algorithms including Bayesian optimization, budgets, and synthetic
//!   benchmarking for loss/algorithm selection).
//! - [`wfsim`] — case study #1: a scientific-workflow simulator with 12
//!   level-of-detail versions and a Pegasus/HTCondor-style ground-truth
//!   emulator.
//! - [`mpisim`] — case study #2: an MPI point-to-point benchmark simulator
//!   with 16 level-of-detail versions and a Summit-style ground-truth
//!   emulator.
//! - [`batchsim`] — case study #3 (the paper's stated future-work domain):
//!   a batch-scheduling simulator with EASY backfilling and 4
//!   level-of-detail versions.
//! - [`gridsim`] — case study #4: a federated data-grid simulator (sites,
//!   storage elements, caches, WAN transfers, job brokering) with 8
//!   level-of-detail versions.
//! - [`dessim`] — the flow-level discrete-event simulation kernel the
//!   first two case studies are built on.
//! - [`numeric`] — dense linear algebra, statistics, and seeded sampling.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete run: generate ground truth,
//! calibrate a simulator version under a fixed budget, and report the
//! makespan error on held-out executions.

pub use batchsim;
pub use dessim;
pub use gridsim;
pub use mpisim;
pub use numeric;
pub use simcal;
pub use wfsim;
