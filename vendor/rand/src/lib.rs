//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`, and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! *not* bit-compatible with upstream `rand`; everything in this workspace
//! only relies on determinism (same seed, same stream), not on specific
//! values.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (span > 0; a span of
/// 0 means the full 2^64 range and only arises from inclusive full ranges,
/// which this workspace never uses).
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Widening multiply gives a negligible, deterministic bias for the
    // spans used here (all far below 2^64).
    (rng.next_u64() as u128 * span) >> 64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The generator trait: a raw `u64` source plus the convenience samplers
/// this workspace calls.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; not stream-compatible with upstream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice shuffling and random element selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u32..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
