//! Workspace-local stand-in for `criterion`.
//!
//! Covers the group/`bench_with_input`/`BenchmarkId` surface the workspace's
//! benches use. Like upstream, a bench binary run by `cargo test` (no
//! `--bench` flag on the command line) executes every routine exactly once
//! as a smoke test; under `cargo bench` (cargo passes `--bench`) it warms
//! up, measures for the configured wall-clock window, and prints a
//! mean-time-per-iteration line per benchmark.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver and configuration.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    full_run: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            full_run: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for upstream compatibility; sampling here is time-driven.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a single routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; this driver sizes samples by
    /// measurement time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Benchmark a routine with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// End the group (upstream writes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Identify the benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    full_run: bool,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Run `routine` repeatedly and record mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.full_run {
            // Smoke-test mode (`cargo test`): one iteration, no timing.
            black_box(routine());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        let elapsed = loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement {
                break elapsed;
            }
        };
        self.result = Some((elapsed, iters));
    }
}

fn run_one(criterion: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up: criterion.warm_up,
        measurement: criterion.measurement,
        full_run: criterion.full_run,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((elapsed, iters)) if criterion.full_run => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!("{label}: {} /iter ({iters} iterations)", humanize(per_iter));
        }
        Some(_) => println!("{label}: ok (smoke test)"),
        None => println!("{label}: no measurement recorded"),
    }
}

fn humanize(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Group benchmark functions under a single entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
            full_run: false,
        };
        let mut count = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &3u32, |b, &x| {
            b.iter(|| {
                count += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn full_mode_measures() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(2),
            measurement: Duration::from_millis(5),
            full_run: true,
        };
        let mut count = 0u64;
        c.bench_function("spin", |b| b.iter(|| count += 1));
        assert!(count > 1);
    }
}
