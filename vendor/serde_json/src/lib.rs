//! Workspace-local stand-in for `serde_json`: a JSON printer and parser for
//! the local `serde` crate's [`serde::Value`] data model.
//!
//! Float printing uses Rust's shortest-roundtrip `Display`, so values
//! survive a `to_string` → `from_str` cycle exactly (the `float_roundtrip`
//! feature of upstream serde_json is the only behavior here).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent, like upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

// ---- printer ---------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; upstream errors, `null` keeps us total.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fraction marker so the value reads as a float.
        let _ = fmt::write(out, format_args!("{f:.1}"));
    } else {
        let _ = fmt::write(out, format_args!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect `\uXXXX` low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<f64>("1.5").expect("parse"), 1.5);
        assert_eq!(from_str::<i64>("-3").expect("parse"), -3);
        assert_eq!(
            from_str::<u64>("18446744073709551615").expect("parse"),
            u64::MAX
        );
        assert!(from_str::<bool>("true").expect("parse"));
        assert_eq!(from_str::<String>("\"a\\nb\"").expect("parse"), "a\nb");
    }

    #[test]
    fn roundtrip_float_shortest() {
        let xs = vec![0.1, 1.0 / 3.0, 1e-300, 12345.6789, f64::MIN_POSITIVE];
        let json = to_string(&xs).expect("serialize");
        let back: Vec<f64> = from_str(&json).expect("parse");
        assert_eq!(xs, back);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let pretty = to_string_pretty(&v).expect("serialize");
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn parse_nested_and_escapes() {
        let v: Value =
            from_str("{\"k\": [1, 2.5, null, \"\\u0041\\ud83d\\ude00\"]}").expect("parse");
        let arr = v.get("k").expect("key present");
        match arr {
            Value::Array(items) => {
                assert_eq!(items[0], Value::Int(1));
                assert_eq!(items[1], Value::Float(2.5));
                assert_eq!(items[2], Value::Null);
                assert_eq!(items[3], Value::Str("A\u{1F600}".to_string()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("[1,,2]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
