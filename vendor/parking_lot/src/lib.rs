//! Workspace-local stand-in for `parking_lot`: thin non-poisoning wrappers
//! over `std::sync` primitives with the same `lock()`-returns-guard shape.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (a poisoned std lock is treated as acquired, which
    /// matches parking_lot's no-poisoning semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }
}
