//! Workspace-local stand-in for `proptest`.
//!
//! Covers the surface this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range and `Just` strategies,
//! `proptest::collection::vec`, `prop_oneof!`, and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros.
//!
//! Unlike upstream there is no shrinking and no persisted regression seeds:
//! each case draws from a deterministic per-case RNG, so failures reproduce
//! on re-run; the failure message reports the case number.

use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Deterministic RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Build the RNG for one test case. Deterministic in the case index so
/// failures reproduce exactly on the next run.
pub fn test_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1))
}

/// Runner configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A plain assertion failure.
    pub fn fail(message: String) -> Self {
        Self(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values (upstream's trait, minus shrinking).
pub trait Strategy {
    /// The type this strategy produces.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Uniform choice between boxed strategies of a common value type
/// (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Define property tests. Mirrors upstream's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_prop(x in 0u64..10, v in proptest::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(__case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __left, __right,
            )));
        }
    }};
    ($left:expr, $right:expr, $fmt:literal $($args:tt)*) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($fmt $($args)*),
                __left, __right,
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(__options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            x in 3u64..10,
            y in -2.5f64..=2.5,
            n in 1usize..4,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..=2.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in crate::collection::vec(0.0f64..1.0, 7),
            ranged in crate::collection::vec(0u64..5, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_default_config(choice in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!(matches!(choice, 1..=3));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let a = (0u64..1_000_000).generate(&mut crate::test_rng(7));
        let b = (0u64..1_000_000).generate(&mut crate::test_rng(7));
        assert_eq!(a, b);
    }
}
