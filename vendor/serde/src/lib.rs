//! Workspace-local stand-in for `serde`.
//!
//! Upstream serde's visitor-based data model is far larger than this
//! workspace needs; here [`Serialize`] and [`Deserialize`] convert to and
//! from an owned JSON-like [`Value`] tree, and `serde_json` is a printer /
//! parser for that tree. The derive macros (re-exported from the local
//! `serde_derive` proc-macro crate) generate these conversions for structs
//! with named fields and for enums with unit or struct variants, honoring
//! `#[serde(rename = "...")]` on fields.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON-shaped value tree: the data model of this serde stand-in.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Any other JSON number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Build an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Represent `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match *value {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    Value::Float(f) if f.fract() == 0.0 => f as i128,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::Int(wide as i64) } else { Value::UInt(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u128 = match *value {
                    Value::Int(i) if i >= 0 => i as u128,
                    Value::UInt(u) => u as u128,
                    Value::Float(f) if f.fract() == 0.0 && f >= 0.0 => f as u128,
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )+};
}

tuple_impls! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
