//! Workspace-local stand-in for `rayon`: a persistent work-stealing thread
//! pool behind the `par_iter().map().collect()` pipeline and a `join`
//! primitive.
//!
//! # Architecture
//!
//! The seed implementation spawned fresh scoped OS threads with static
//! per-core chunking on every `par_iter` call, so each parallel map paid
//! thread-creation cost and one slow item serialized its whole chunk. This
//! version keeps a **persistent pool**:
//!
//! - Worker threads are created **once** (lazily, on first use). The global
//!   pool's size comes from the `CALIB_THREADS` environment variable,
//!   defaulting to `std::thread::available_parallelism()`. A pool of size
//!   `n` spawns `n - 1` workers; the calling thread is the `n`-th
//!   participant, so a 1-thread pool spawns nothing and runs everything
//!   inline.
//! - Each worker owns a **deque**: it pops its own deque LIFO (back) and
//!   **steals** from other workers' deques and the shared injector FIFO
//!   (front). External threads submit through the injector or directly into
//!   worker deques.
//! - Parallel maps use **per-item scheduling**: participants claim item
//!   indices from a shared atomic counter, so a single expensive item
//!   occupies exactly one participant while the rest drain the remaining
//!   items. Results are written into pre-allocated slots, preserving input
//!   order exactly like rayon's indexed parallel iterators.
//! - [`join`] runs one closure inline and schedules the other on the pool,
//!   reclaiming it LIFO if it has not been stolen by the time the first
//!   closure finishes.
//! - Threads that wait (for a map or a join) **help**: they execute other
//!   pool jobs while waiting, which both keeps cores busy and makes nested
//!   parallelism deadlock-free.
//!
//! Runs of fewer than 2 items, and every run on a 1-thread pool, execute
//! inline on the caller with zero cross-thread traffic.
//!
//! The deques are `Mutex<VecDeque>`s rather than lock-free Chase-Lev
//! deques: jobs here are coarse (a simulator invocation each), so queue
//! contention is negligible against job cost, and the locked variant is
//! easy to verify.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

pub mod prelude {
    //! Import to get `.par_iter()` on slices and `Vec`s.
    pub use crate::IntoParallelRefIterator;
}

// ---------------------------------------------------------------------------
// Pool state and worker threads
// ---------------------------------------------------------------------------

/// An erased pointer to a job living on some waiting caller's stack. The
/// caller guarantees the pointee outlives execution by blocking until every
/// copy of the job has run (see `MapJob` / `StackJob`).
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed while the stack frame that owns
// the pointee is blocked waiting for it; the pointee types are themselves
// built from Sync ingredients.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// The pointee must still be alive (the owning frame is waiting on it).
    unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

struct PoolState {
    /// Per-worker deques; workers pop their own from the back and steal
    /// from others' fronts.
    queues: Vec<Mutex<VecDeque<JobRef>>>,
    /// Shared FIFO for jobs submitted by threads outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Jobs queued but not yet picked up (sleep/wake accounting).
    pending: AtomicUsize,
    /// Round-robin cursor for distributing map-runner jobs.
    cursor: AtomicUsize,
    /// Sleep support: workers and waiters park here.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Total participants: spawned workers + the calling thread.
    n_threads: usize,
}

impl PoolState {
    /// Push a job onto worker queue `idx` (or the injector if `None`).
    fn push(&self, idx: Option<usize>, job: JobRef) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        match idx {
            Some(i) => self.queues[i].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        // Taking the sleep lock orders this push against any worker that
        // just failed to find work and is about to wait: either it sees
        // `pending > 0` before sleeping, or it is already waiting and the
        // notification wakes it.
        let _guard = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }

    /// Pop or steal one job. `me` is the caller's own queue index when the
    /// caller is a worker of this pool.
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        if let Some(i) = me {
            if let Some(job) = self.queues[i].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.queues.len();
        if n == 0 {
            return None;
        }
        // Rotate the steal origin so victims are spread across thieves.
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
        for off in 0..n {
            let v = (start + off) % n;
            if Some(v) == me {
                continue;
            }
            if let Some(job) = self.queues[v].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                obs::counter(obs::Counter::PoolSteals, 1);
                return Some(job);
            }
        }
        None
    }

    /// Try to reclaim a previously pushed job (identified by its data
    /// pointer) before anyone steals it. Searches from the back, where a
    /// `join` just pushed.
    fn try_unqueue(&self, idx: Option<usize>, data: *const ()) -> bool {
        let mut queue = match idx {
            Some(i) => self.queues[i].lock().unwrap(),
            None => self.injector.lock().unwrap(),
        };
        if let Some(pos) = queue.iter().rposition(|j| std::ptr::eq(j.data, data)) {
            queue.remove(pos);
            drop(queue);
            self.pending.fetch_sub(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Wait until `done()` holds, executing other pool jobs while waiting
    /// (helping keeps cores busy and makes nested parallelism live).
    fn wait_while_helping(&self, me: Option<usize>, done: &dyn Fn() -> bool) {
        while !done() {
            if let Some(job) = self.find_work(me) {
                // SAFETY: queued jobs are kept alive by their waiting
                // owners until every copy has executed.
                unsafe { job.execute() };
                continue;
            }
            let guard = self.sleep.lock().unwrap();
            if !done() && self.pending.load(Ordering::SeqCst) == 0 {
                // The timeout is a belt-and-braces liveness guard; normal
                // wakeups come from `push` and `notify_done`.
                obs::counter(obs::Counter::PoolParks, 1);
                let _ = self
                    .wake
                    .wait_timeout(guard, Duration::from_millis(5))
                    .unwrap();
            }
        }
    }

    /// Wake every sleeper (a latch was set or a counter reached zero).
    fn notify_done(&self) {
        let _guard = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }
}

thread_local! {
    /// Set on pool worker threads: (their pool, their queue index).
    static WORKER: RefCell<Option<(Arc<PoolState>, usize)>> = const { RefCell::new(None) };
    /// Stack of pools entered via [`ThreadPool::install`] on non-worker
    /// threads.
    static INSTALLED: RefCell<Vec<Arc<PoolState>>> = const { RefCell::new(Vec::new()) };
}

fn worker_main(state: Arc<PoolState>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&state), index)));
    loop {
        if let Some(job) = state.find_work(Some(index)) {
            // SAFETY: see `wait_while_helping`.
            unsafe { job.execute() };
            continue;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = state.sleep.lock().unwrap();
        if state.pending.load(Ordering::SeqCst) == 0 && !state.shutdown.load(Ordering::SeqCst) {
            obs::counter(obs::Counter::PoolParks, 1);
            let _ = state
                .wake
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap();
        }
    }
}

/// The pool the current thread should schedule onto: its own pool when it
/// is a worker thread, the innermost [`ThreadPool::install`] otherwise,
/// else the global pool.
fn current_pool() -> Arc<PoolState> {
    if let Some(pool) = WORKER.with(|w| w.borrow().as_ref().map(|(p, _)| Arc::clone(p))) {
        return pool;
    }
    if let Some(pool) = INSTALLED.with(|s| s.borrow().last().cloned()) {
        return pool;
    }
    Arc::clone(&global_pool().state)
}

/// The current thread's queue index within `pool`, if it is one of the
/// pool's workers.
fn my_index_in(pool: &Arc<PoolState>) -> Option<usize> {
    WORKER.with(|w| match w.borrow().as_ref() {
        Some((p, i)) if Arc::ptr_eq(p, pool) => Some(*i),
        _ => None,
    })
}

// ---------------------------------------------------------------------------
// Public pool handle
// ---------------------------------------------------------------------------

/// A handle to a persistent work-stealing pool.
///
/// A pool of `n` threads spawns `n - 1` workers; the thread calling
/// [`ThreadPool::install`] (or blocking inside a parallel map) is the
/// `n`-th participant. Dropping the handle shuts the workers down.
pub struct ThreadPool {
    state: Arc<PoolState>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `n` total threads (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        let state = Arc::new(PoolState {
            queues: (0..n - 1).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            n_threads: n,
        });
        let workers = (0..n - 1)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("calib-worker-{i}"))
                    .spawn(move || worker_main(state, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { state, workers }
    }

    /// Number of threads (including the calling thread).
    pub fn current_num_threads(&self) -> usize {
        self.state.n_threads
    }

    /// Run `f` on the calling thread with this pool as the scheduling
    /// target for every `par_iter`/`join` reached dynamically within.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|s| s.borrow_mut().push(Arc::clone(&self.state)));
        struct PopOnDrop;
        impl Drop for PopOnDrop {
            fn drop(&mut self) {
                INSTALLED.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let _pop = PopOnDrop;
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.notify_done();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pool size from a `CALIB_THREADS`-style setting (positive integer), or
/// the machine's available parallelism.
fn thread_count_from(setting: Option<&str>) -> usize {
    setting
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        ThreadPool::new(thread_count_from(
            std::env::var("CALIB_THREADS").ok().as_deref(),
        ))
    })
}

/// Number of worker threads the current scope's pool uses.
pub fn current_num_threads() -> usize {
    current_pool().n_threads
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// A `join`'s second closure, parked on the caller's stack while queued.
struct StackJob<F, R> {
    f: Mutex<Option<F>>,
    result: Mutex<Option<std::thread::Result<R>>>,
    done: AtomicBool,
    pool: *const PoolState,
}

impl<F: FnOnce() -> R + Send, R: Send> StackJob<F, R> {
    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::exec,
        }
    }

    /// # Safety
    /// `data` points to a live `StackJob<F, R>`.
    unsafe fn exec(data: *const ()) {
        let job = &*(data as *const Self);
        let f = job.f.lock().unwrap().take().expect("job executed twice");
        let result = catch_unwind(AssertUnwindSafe(f));
        *job.result.lock().unwrap() = Some(result);
        job.done.store(true, Ordering::SeqCst);
        (*job.pool).notify_done();
    }
}

/// Run `oper_a` and `oper_b`, potentially in parallel, and return both
/// results. `oper_a` runs on the calling thread; `oper_b` is offered to
/// the pool and reclaimed (run inline) if nobody stole it. Panics in
/// either closure propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_pool();
    if pool.n_threads <= 1 {
        // Small/serial fast path: no cross-thread traffic at all.
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let me = my_index_in(&pool);
    let job_b = StackJob {
        f: Mutex::new(Some(oper_b)),
        result: Mutex::new(None),
        done: AtomicBool::new(false),
        pool: &*pool as *const PoolState,
    };
    let bref = job_b.as_job_ref();
    pool.push(me, bref);

    let ra = catch_unwind(AssertUnwindSafe(oper_a));

    if pool.try_unqueue(me, bref.data) {
        // Not stolen: run it inline, LIFO, like rayon does.
        // SAFETY: job_b is alive on this frame.
        unsafe { bref.execute() };
    } else {
        pool.wait_while_helping(me, &|| job_b.done.load(Ordering::SeqCst));
    }

    let rb = job_b
        .result
        .lock()
        .unwrap()
        .take()
        .expect("join closure finished without a result");
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(panic), _) | (_, Err(panic)) => resume_unwind(panic),
    }
}

// ---------------------------------------------------------------------------
// Parallel map with per-item scheduling
// ---------------------------------------------------------------------------

/// Shared state of one in-flight parallel map. Lives on the initiating
/// caller's stack; the caller blocks until `outstanding` reaches zero, so
/// every raw pointer below stays valid for the map's whole lifetime.
struct MapJob<'f, 'a, T, R, F> {
    items: &'a [T],
    f: &'f F,
    out: *mut Option<R>,
    /// Next unclaimed item index.
    next: AtomicUsize,
    /// Unfinished items + unretired runner tokens; the caller may return
    /// only once this is zero (ensuring no queued `JobRef` outlives us).
    outstanding: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    pool: *const PoolState,
}

impl<'f, 'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> MapJob<'f, 'a, T, R, F> {
    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::exec_runner,
        }
    }

    /// Entry point of a queued runner: drain items, then retire the
    /// runner's own token.
    ///
    /// # Safety
    /// `data` points to a live `MapJob<T, R, F>`.
    unsafe fn exec_runner(data: *const ()) {
        let job = &*(data as *const Self);
        job.run_items();
        job.finish_one();
    }

    /// Claim and execute items until the counter runs dry. Per-item
    /// scheduling: one expensive item holds up one participant only.
    fn run_items(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.items.len() {
                return;
            }
            let item = &self.items[i];
            match catch_unwind(AssertUnwindSafe(|| (self.f)(item))) {
                // SAFETY: distinct indices go to distinct slots, and the
                // caller keeps `out` alive until outstanding == 0.
                Ok(value) => unsafe { *self.out.add(i) = Some(value) },
                Err(payload) => {
                    let mut slot = self.panic.lock().unwrap();
                    slot.get_or_insert(payload);
                }
            }
            self.finish_one();
        }
    }

    fn finish_one(&self) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            // SAFETY: the pool outlives the map (the caller holds an Arc).
            unsafe { (*self.pool).notify_done() };
        }
    }
}

fn run_map<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let pool = current_pool();
    if n < 2 || pool.n_threads <= 1 {
        // Small-input fast path: run inline on the caller, zero
        // cross-thread traffic, zero allocation beyond the output.
        return items.iter().map(f).collect();
    }

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // One runner job per participant beyond the caller. Runner jobs are
    // tiny: each pops once and then claims items from the shared counter.
    let runners = pool.n_threads.min(n) - 1;
    let job: MapJob<'_, 'a, T, R, F> = MapJob {
        items,
        f,
        out: out.as_mut_ptr(),
        next: AtomicUsize::new(0),
        outstanding: AtomicUsize::new(n + runners),
        panic: Mutex::new(None),
        pool: &*pool as *const PoolState,
    };
    let me = my_index_in(&pool);
    let workers = pool.queues.len();
    let base = pool.cursor.fetch_add(1, Ordering::Relaxed);
    for k in 0..runners {
        // Round-robin across worker deques (waking each in turn); idle
        // workers may also steal these from each other.
        pool.push(Some((base + k) % workers), job.as_job_ref());
    }

    // The caller is a participant too.
    job.run_items();
    pool.wait_while_helping(me, &|| job.outstanding.load(Ordering::SeqCst) == 0);

    if let Some(payload) = job.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    out.into_iter()
        .map(|slot| slot.expect("map participant filled every slot"))
        .collect()
}

// ---------------------------------------------------------------------------
// par_iter surface (unchanged from the seed)
// ---------------------------------------------------------------------------

/// Conversion to a borrowing parallel iterator (rayon's trait of the same
/// name, reduced to the slice case).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// Start a parallel pipeline over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map on the pool and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_map(self.items, &self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_collect_preserves_order_on_multithread_pool() {
        let pool = ThreadPool::new(4);
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = pool.install(|| xs.par_iter().map(|x| x * 3 + 1).collect());
        assert_eq!(ys, (0..10_000).map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u64> = Vec::new();
        let ys: Vec<u64> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn tiny_input_runs_inline_on_caller() {
        let pool = ThreadPool::new(4);
        let caller = std::thread::current().id();
        let xs = vec![7u64];
        let tids: Vec<std::thread::ThreadId> =
            pool.install(|| xs.par_iter().map(|_| std::thread::current().id()).collect());
        assert_eq!(tids, vec![caller], "single item must not cross threads");
    }

    #[test]
    fn one_thread_pool_runs_inline_on_caller() {
        let pool = ThreadPool::new(1);
        let caller = std::thread::current().id();
        let xs: Vec<u64> = (0..64).collect();
        let tids: Vec<std::thread::ThreadId> =
            pool.install(|| xs.par_iter().map(|_| std::thread::current().id()).collect());
        assert!(tids.iter().all(|&t| t == caller));
        assert_eq!(pool.current_num_threads(), 1);
    }

    #[test]
    fn install_scopes_the_pool() {
        let p1 = ThreadPool::new(1);
        let p4 = ThreadPool::new(4);
        p4.install(|| {
            assert_eq!(current_num_threads(), 4);
            p1.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 4);
        });
    }

    #[test]
    fn nested_maps_complete() {
        let pool = ThreadPool::new(4);
        let outer: Vec<u64> = (0..16).collect();
        let total: u64 = pool.install(|| {
            let sums: Vec<u64> = outer
                .par_iter()
                .map(|&o| {
                    let inner: Vec<u64> = (0..50).collect();
                    let s: Vec<u64> = inner.par_iter().map(|&i| i + o).collect();
                    s.iter().sum()
                })
                .collect();
            sums.iter().sum()
        });
        let expected: u64 = (0..16u64)
            .map(|o| (0..50u64).map(|i| i + o).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(4);
        let (a, b) = pool.install(|| join(|| 2 + 2, || "ok".to_string()));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_joins_compute_fibonacci() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = ThreadPool::new(4);
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn map_panic_propagates() {
        let pool = ThreadPool::new(4);
        let xs: Vec<u64> = (0..100).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _: Vec<u64> = pool.install(|| {
                xs.par_iter()
                    .map(|&x| {
                        if x == 63 {
                            panic!("boom at 63");
                        }
                        x
                    })
                    .collect()
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn join_panic_in_b_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| join(|| 1, || -> u32 { panic!("b panicked") }))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn slow_item_does_not_serialize_the_rest() {
        // With per-item scheduling, one 40 ms item plus 30 trivial items
        // must finish in far less than 31 * 40 ms even on few cores; the
        // trivial items drain while one participant holds the slow one.
        let pool = ThreadPool::new(4);
        let xs: Vec<u64> = (0..31).collect();
        let start = std::time::Instant::now();
        let ys: Vec<u64> = pool.install(|| {
            xs.par_iter()
                .map(|&x| {
                    if x == 0 {
                        std::thread::sleep(Duration::from_millis(40));
                    }
                    x
                })
                .collect()
        });
        assert_eq!(ys, xs);
        assert!(
            start.elapsed() < Duration::from_millis(600),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn thread_count_setting_parses() {
        assert_eq!(thread_count_from(Some("3")), 3);
        assert_eq!(thread_count_from(Some(" 8 ")), 8);
        // Invalid or zero values fall back to the machine default (>= 1).
        assert!(thread_count_from(Some("0")) >= 1);
        assert!(thread_count_from(Some("banana")) >= 1);
        assert!(thread_count_from(None) >= 1);
    }

    #[test]
    fn pool_is_reusable_across_many_small_maps() {
        let pool = ThreadPool::new(3);
        for round in 0..200u64 {
            let xs: Vec<u64> = (0..8).collect();
            let ys: Vec<u64> = pool.install(|| xs.par_iter().map(|x| x + round).collect());
            assert_eq!(ys, (0..8).map(|x| x + round).collect::<Vec<_>>());
        }
    }
}
