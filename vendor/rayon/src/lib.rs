//! Workspace-local stand-in for `rayon`: the `par_iter().map().collect()`
//! pipeline over slices, executed on scoped OS threads.
//!
//! Work is split into contiguous chunks, one per available core, and the
//! results are reassembled in input order, so `collect` preserves element
//! order exactly like rayon's indexed parallel iterators do.

use std::num::NonZeroUsize;

pub mod prelude {
    //! Import to get `.par_iter()` on slices and `Vec`s.
    pub use crate::IntoParallelRefIterator;
}

/// Number of worker threads used for parallel maps.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion to a borrowing parallel iterator (rayon's trait of the same
/// name, reduced to the slice case).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// Start a parallel pipeline over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map on scoped threads and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_map(self.items, &self.f).into_iter().collect()
    }
}

fn run_map<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u64> = Vec::new();
        let ys: Vec<u64> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
    }
}
