//! Workspace-local stand-in for `serde_derive`.
//!
//! Generates the `to_value` / `from_value` conversions of the local `serde`
//! crate's [`Serialize`]/[`Deserialize`] traits. The parser is hand-rolled
//! (no `syn`): it only needs item names, field names, variant shapes, and
//! `#[serde(rename = "...")]` attributes — field *types* never appear in the
//! generated code, which relies on inference through `from_value`.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields
//! - enums whose variants are unit or struct-like (externally tagged:
//!   a unit variant serializes to its name as a string, a struct variant
//!   to a single-key object `{"Variant": {...fields}}`)

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// One named field: its Rust name and its serialized key.
struct Field {
    name: String,
    key: String,
}

/// `None` fields = unit variant; `Some(fields)` = struct variant.
struct Variant {
    name: String,
    fields: Option<Vec<Field>>,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` plus the bracketed attribute group
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match (kind, word.as_str()) {
                    (None, "struct") => {
                        kind = Some("struct");
                        i += 1;
                    }
                    (None, "enum") => {
                        kind = Some("enum");
                        i += 1;
                    }
                    (Some(_), _) if name.is_none() => {
                        name = Some(word);
                        i += 1;
                    }
                    _ => i += 1, // `pub`, etc.
                }
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace && kind.is_some() && name.is_some() =>
            {
                let name = name.expect("item name parsed");
                return match kind {
                    Some("struct") => Item::Struct {
                        name,
                        fields: parse_fields(g.stream()),
                    },
                    _ => Item::Enum {
                        name,
                        variants: parse_variants(g.stream()),
                    },
                };
            }
            _ => i += 1,
        }
    }
    panic!("derive(Serialize/Deserialize): unsupported item shape (need a braced struct or enum)");
}

/// Parse `[attrs] [vis] name : Type ,` sequences inside a brace group.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut rename: Option<String> = None;
        // Attributes (doc comments arrive as `#[doc = ...]` too).
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            if let TokenTree::Group(g) = &tokens[i + 1] {
                if let Some(r) = parse_rename(g.stream()) {
                    rename = Some(r);
                }
            }
            i += 2;
        }
        // Visibility: `pub` optionally followed by `(crate)` etc.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive: expected field name, found `{other}`"),
        };
        i += 2; // field name and the `:` after it
                // Skip the type: scan to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let key = rename.unwrap_or_else(|| name.clone());
        fields.push(Field { name, key });
    }
    fields
}

/// Parse `[attrs] Name [{ fields }] ,` sequences inside an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let mut fields = None;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                match g.delimiter() {
                    Delimiter::Brace => {
                        fields = Some(parse_fields(g.stream()));
                        i += 1;
                    }
                    Delimiter::Parenthesis => {
                        panic!("derive: tuple variant `{name}` is not supported")
                    }
                    _ => {}
                }
            }
        }
        if i < tokens.len() && matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Extract `rename = "..."` from the inside of a `#[serde(...)]` attribute.
fn parse_rename(attr: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i + 2 < inner.len() + 1 {
        if let (TokenTree::Ident(id), Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
            (&inner[i], inner.get(i + 1), inner.get(i + 2))
        {
            if id.to_string() == "rename" && eq.as_char() == '=' {
                let raw = lit.to_string();
                return Some(raw.trim_matches('"').to_string());
            }
        }
        i += 1;
    }
    None
}

// ---- code generation -------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut entries = String::new();
    for f in fields {
        let _ = write!(
            entries,
            "({:?}.to_string(), serde::Serialize::to_value(&self.{})),",
            f.key, f.name
        );
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let _ = write!(
            inits,
            "{field}: serde::Deserialize::from_value(\
                 __value.get({key:?}).unwrap_or(&serde::Value::Null))\
                 .map_err(|e| serde::DeError(format!(\"field `{key}`: {{e}}\")))?,",
            field = f.name,
            key = f.key,
        );
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(__value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 match __value {{\n\
                     serde::Value::Object(_) => Ok(Self {{ {inits} }}),\n\
                     other => Err(serde::DeError::expected(\"object\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => {
                let _ = write!(
                    arms,
                    "{name}::{v} => serde::Value::Str({v:?}.to_string()),",
                    v = v.name
                );
            }
            Some(fields) => {
                let pattern: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut entries = String::new();
                for f in fields {
                    let _ = write!(
                        entries,
                        "({:?}.to_string(), serde::Serialize::to_value({})),",
                        f.key, f.name
                    );
                }
                let _ = write!(
                    arms,
                    "{name}::{v} {{ {pat} }} => serde::Value::Object(vec![\
                         ({v:?}.to_string(), serde::Value::Object(vec![{entries}]))]),",
                    v = v.name,
                    pat = pattern.join(", "),
                );
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut struct_arms = String::new();
    for v in variants {
        match &v.fields {
            None => {
                let _ = write!(unit_arms, "{:?} => Ok({name}::{}),", v.name, v.name);
            }
            Some(fields) => {
                let mut inits = String::new();
                for f in fields {
                    let _ = write!(
                        inits,
                        "{field}: serde::Deserialize::from_value(\
                             __inner.get({key:?}).unwrap_or(&serde::Value::Null))\
                             .map_err(|e| serde::DeError(format!(\"field `{key}`: {{e}}\")))?,",
                        field = f.name,
                        key = f.key,
                    );
                }
                let _ = write!(
                    struct_arms,
                    "{:?} => Ok({name}::{} {{ {inits} }}),",
                    v.name, v.name
                );
            }
        }
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(__value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 match __value {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(serde::DeError(format!(\n\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {struct_arms}\n\
                             other => Err(serde::DeError(format!(\n\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(serde::DeError::expected(\n\
                         \"variant name or single-key object\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
