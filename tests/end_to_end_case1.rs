//! End-to-end integration tests for case study #1: ground-truth
//! emulation -> scenario construction -> calibration -> held-out
//! evaluation, spanning `wfsim`, `simcal`, `dessim`, and `numeric`.

use lodcal::simcal::prelude::*;
use lodcal::wfsim::prelude::*;

fn small_options() -> DatasetOptions {
    DatasetOptions {
        repetitions: 2,
        size_indices: vec![0, 1],
        work_indices: vec![0, 3],
        footprint_indices: vec![1],
        worker_counts: vec![1, 2, 4],
        ..Default::default()
    }
}

fn makespan_errors(
    sim: &WorkflowSimulator,
    calib: &Calibration,
    scenarios: &[WfScenario],
) -> Vec<f64> {
    scenarios
        .iter()
        .map(|s| {
            relative_error(
                s.gt_makespan,
                sim.simulate(&s.workflow, s.n_workers, calib).makespan,
            )
        })
        .collect()
}

#[test]
fn calibrated_condor_version_beats_spec_baseline() {
    let records = dataset_for(AppKind::Forkjoin, &small_options());
    let (train, test) = split_train_test(&records);
    assert!(!train.is_empty() && !test.is_empty());
    let train_s = WfScenario::from_records(&train);
    let test_s = WfScenario::from_records(&test);

    let version = SimulatorVersion {
        network: NetworkModel::OneLink,
        storage: StorageModel::SubmitOnly,
        compute: ComputeModel::HtCondor,
    };
    let sim = WorkflowSimulator::new(version);
    let obj = objective(
        &sim,
        &train_s,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
    );
    let result = Calibrator::bo_gp(Budget::Evaluations(120), 3).calibrate(&obj);

    let calibrated = numeric::mean(&makespan_errors(&sim, &result.calibration, &test_s));

    let base_version = SimulatorVersion::lowest_detail();
    let base_sim = WorkflowSimulator::new(base_version);
    let baseline = numeric::mean(&makespan_errors(
        &base_sim,
        &spec_calibration(base_version),
        &test_s,
    ));

    assert!(
        calibrated < baseline * 0.7,
        "calibrated {calibrated:.3} should clearly beat spec baseline {baseline:.3}"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let records = dataset_for(AppKind::Chain, &small_options());
        let scenarios = WfScenario::from_records(&records);
        let sim = WorkflowSimulator::new(SimulatorVersion::lowest_detail());
        let obj = objective(
            &sim,
            &scenarios,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        );
        let r = Calibrator::bo_gp(Budget::Evaluations(40), 9).calibrate(&obj);
        (r.loss, r.calibration)
    };
    let (l1, c1) = run();
    let (l2, c2) = run();
    assert_eq!(l1, l2);
    assert_eq!(c1, c2);
}

#[test]
fn every_version_calibrates_without_panic_and_improves() {
    let records = dataset_for(AppKind::Forkjoin, &small_options());
    let scenarios = WfScenario::from_records(&records);
    let loss = StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1");
    for version in SimulatorVersion::all() {
        let sim = WorkflowSimulator::new(version);
        let obj = objective(&sim, &scenarios, loss.clone());
        // Arbitrary starting point for comparison.
        let start = obj.loss(
            &version
                .parameter_space()
                .denormalize(&vec![0.25; obj.space().dim()]),
        );
        let result = Calibrator::bo_gp(Budget::Evaluations(50), 1).calibrate(&obj);
        assert!(result.loss.is_finite(), "{}", version.label());
        assert!(
            result.loss <= start,
            "{}: calibrated {} vs arbitrary {start}",
            version.label(),
            result.loss
        );
    }
}

#[test]
fn training_cost_metric_matches_paper_definition() {
    let records = dataset_for(AppKind::Forkjoin, &small_options());
    for r in &records {
        assert!((r.cost() - r.n_workers as f64 * r.makespan).abs() < 1e-12);
    }
}

#[test]
fn synthetic_benchmarking_identifies_a_decent_calibration() {
    // Ground truth produced by the simulator itself at a known reference:
    // a budgeted BO-GP run must land substantially closer to the
    // reference than a random point does (calibration error metric).
    let version = SimulatorVersion {
        network: NetworkModel::OneLink,
        storage: StorageModel::SubmitOnly,
        compute: ComputeModel::Direct,
    };
    let space = version.parameter_space();
    let sim = WorkflowSimulator::new(version);
    let reference = space.denormalize(&vec![0.4; space.dim()]);

    let opts = small_options();
    let mut scenarios = Vec::new();
    for record in dataset_for(AppKind::Forkjoin, &opts) {
        let workflow = generate(&record.spec);
        let out = sim.simulate(&workflow, record.n_workers, &reference);
        scenarios.push(WfScenario {
            workflow,
            n_workers: record.n_workers,
            gt_makespan: out.makespan,
            gt_task_times: out.task_times,
        });
    }
    let obj = objective(
        &sim,
        &scenarios,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
    );
    let result = Calibrator::bo_gp(Budget::Evaluations(150), 2).calibrate(&obj);
    // Loss at the reference is exactly 0 by construction; the calibration
    // must reach a small loss.
    assert!(
        result.loss < 0.05,
        "synthetic loss should approach 0, got {}",
        result.loss
    );
}
