//! End-to-end integration tests for case study #2: Summit-style
//! ground-truth emulation -> calibration -> accuracy and generalization,
//! spanning `mpisim`, `simcal`, and `numeric`.

use lodcal::mpisim::prelude::*;
use lodcal::simcal::prelude::*;

fn cfg() -> MpiEmulatorConfig {
    MpiEmulatorConfig {
        repetitions: 3,
        ..Default::default()
    }
}

#[test]
fn calibration_beats_spec_baseline_on_rate_error() {
    let train = dataset(&BenchmarkKind::CALIBRATION_SET, &[16], &cfg(), 1);
    let version = MpiSimulatorVersion::lowest_detail();
    let sim = MpiSimulator::new(version);
    let obj = objective(&sim, &train, MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"));
    let result = Calibrator::bo_gp(Budget::Evaluations(200), 4).calibrate(&obj);

    let calibrated: Vec<f64> = train
        .iter()
        .map(|s| mean_relative_rate_error(&sim, s, &result.calibration))
        .collect();
    let spec = spec_calibration(version);
    let baseline: Vec<f64> = train
        .iter()
        .map(|s| mean_relative_rate_error(&sim, s, &spec))
        .collect();
    assert!(
        numeric::mean(&calibrated) < numeric::mean(&baseline) * 0.5,
        "calibrated {:.3} vs spec {:.3}",
        numeric::mean(&calibrated),
        numeric::mean(&baseline)
    );
}

#[test]
fn scale_generalization_error_grows() {
    // The §6.5 shape: a calibration computed at the base scale degrades
    // at 4x the scale (the hidden platform has scale-dependent congestion
    // no candidate simulator expresses).
    let base = 16usize;
    let train = dataset(&BenchmarkKind::CALIBRATION_SET, &[base], &cfg(), 7);
    let version = MpiSimulatorVersion {
        topology: TopologyModel::BackboneLinks,
        node: NodeModel::Simple,
        protocol: ProtocolModel::FixedChangepoints,
    };
    let sim = MpiSimulator::new(version);
    let obj = objective(&sim, &train, MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"));
    let result = Calibrator::bo_gp(Budget::Evaluations(300), 8).calibrate(&obj);

    let err_at = |nodes: usize| {
        let data = dataset(&BenchmarkKind::CALIBRATION_SET, &[nodes], &cfg(), 7);
        let errs: Vec<f64> = data
            .iter()
            .map(|s| mean_relative_rate_error(&sim, s, &result.calibration))
            .collect();
        numeric::mean(&errs)
    };
    let e_base = err_at(base);
    let e_big = err_at(base * 4);
    assert!(
        e_big > e_base * 1.3,
        "error should grow with scale: {e_base:.3} -> {e_big:.3}"
    );
}

#[test]
fn all_sixteen_versions_calibrate_without_panic() {
    let train = dataset(&[BenchmarkKind::PingPong], &[8], &cfg(), 2);
    for version in MpiSimulatorVersion::all() {
        let sim = MpiSimulator::new(version);
        let obj = objective(&sim, &train, MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"));
        let r = Calibrator::bo_gp(Budget::Evaluations(40), 1).calibrate(&obj);
        assert!(r.loss.is_finite(), "{}", version.label());
    }
}

#[test]
fn ground_truth_workload_is_shared_between_emulator_and_candidates() {
    // The BiRandom pairing must be identical on both sides — it is part
    // of the workload. With equal parameters, a candidate fat-tree/complex
    // simulator at the emulator's own hidden values reproduces the
    // noise-free truth exactly at base scale.
    let emu = MpiEmulatorConfig {
        scale_exponent: 0.0,
        ..MpiEmulatorConfig::default()
    };
    let version = MpiSimulatorVersion {
        topology: TopologyModel::FatTree,
        node: NodeModel::Complex,
        protocol: ProtocolModel::FixedChangepoints,
    };
    let space = version.parameter_space();
    let calib = space.calibration_from_pairs(&[
        ("down_bw", emu.down_bw),
        ("up_bw", emu.up_bw),
        ("link_lat", emu.link_lat),
        ("xbus_bw", emu.xbus_bw),
        ("pcie_bw", emu.pcie_bw),
        ("factor_small", emu.factors[0]),
        ("factor_medium", emu.factors[1]),
        ("factor_large", emu.factors[2]),
    ]);
    let sizes = message_sizes();
    let truth = emu.true_rates(BenchmarkKind::BiRandom, 32, &sizes);
    let sim =
        MpiSimulator::new(version).transfer_rates(BenchmarkKind::BiRandom, 32, &sizes, &calib);
    for (t, s) in truth.iter().zip(&sim) {
        assert!((t - s).abs() / t < 1e-9, "{t} vs {s}");
    }
}

#[test]
fn explained_variance_loss_is_minimized_near_truth() {
    // At the emulator's own parameters the explained-variance loss is
    // close to its theoretical floor (1.0 for unbiased noise). The hidden
    // scale exponent is disabled: it is inexpressible by construction and
    // would otherwise shift even the oracle at off-base scales.
    let emu = MpiEmulatorConfig {
        scale_exponent: 0.0,
        ..cfg()
    };
    let scenarios = dataset(&[BenchmarkKind::PingPong], &[16], &emu, 11);
    let version = MpiSimulatorVersion {
        topology: TopologyModel::FatTree,
        node: NodeModel::Complex,
        protocol: ProtocolModel::FixedChangepoints,
    };
    let sim = MpiSimulator::new(version);
    let space = version.parameter_space();
    let oracle = space.calibration_from_pairs(&[
        ("down_bw", emu.down_bw),
        ("up_bw", emu.up_bw),
        ("link_lat", emu.link_lat),
        ("xbus_bw", emu.xbus_bw),
        ("pcie_bw", emu.pcie_bw),
        ("factor_small", emu.factors[0]),
        ("factor_medium", emu.factors[1]),
        ("factor_large", emu.factors[2]),
    ]);
    let obj = objective(&sim, &scenarios, MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"));
    let at_oracle = obj.loss(&oracle);
    assert!(
        at_oracle < 3.0,
        "oracle loss should be near the noise floor: {at_oracle}"
    );
    // A far-off point must be much worse.
    let far = space.denormalize(&vec![0.05; space.dim()]);
    assert!(obj.loss(&far) > at_oracle * 3.0);
}
