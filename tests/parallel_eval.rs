//! Determinism tests for the two-level parallel evaluation pipeline.
//!
//! `Objective::par_loss` and `par_loss_batch` fan individual simulator
//! invocations into the work-stealing pool but must reduce in input order,
//! so their results are required to equal the sequential `loss`
//! **bit-for-bit** — on both case-study objectives, under a 1-thread and a
//! 4-thread pool. A second group checks that the evaluator's memoization
//! serves repeated proposals without consuming budget evaluations.

use lodcal::simcal::prelude::*;
use proptest::prelude::*;
use rayon::ThreadPool;
use std::sync::OnceLock;

/// Shared pools (spawning workers once per binary, not once per case).
fn pool(n: usize) -> &'static ThreadPool {
    static POOL1: OnceLock<ThreadPool> = OnceLock::new();
    static POOL4: OnceLock<ThreadPool> = OnceLock::new();
    match n {
        1 => POOL1.get_or_init(|| ThreadPool::new(1)),
        4 => POOL4.get_or_init(|| ThreadPool::new(4)),
        _ => unreachable!("tests only use 1- and 4-thread pools"),
    }
}

/// Cycle a raw random vector into a unit point of the space's dimension.
fn unit_point(raw: &[f64], dim: usize) -> Vec<f64> {
    (0..dim).map(|i| raw[i % raw.len()]).collect()
}

/// Assert the parallel paths reproduce the sequential losses bit-for-bit
/// when installed on an `n_threads`-wide pool.
fn check_par_matches_seq(obj: &dyn Objective, raws: &[Vec<f64>], n_threads: usize) {
    let dim = obj.space().dim();
    let calibs: Vec<Calibration> = raws
        .iter()
        .map(|r| obj.space().denormalize(&unit_point(r, dim)))
        .collect();
    let seq: Vec<f64> = calibs.iter().map(|c| obj.loss(c)).collect();
    pool(n_threads).install(|| {
        for (c, s) in calibs.iter().zip(&seq) {
            let p = obj.par_loss(c);
            assert_eq!(
                p.to_bits(),
                s.to_bits(),
                "par_loss {p} != loss {s} at {n_threads} threads"
            );
        }
        let batch = obj.par_loss_batch(&calibs);
        assert_eq!(batch.len(), seq.len());
        for (p, s) in batch.iter().zip(&seq) {
            assert_eq!(
                p.to_bits(),
                s.to_bits(),
                "par_loss_batch {p} != loss {s} at {n_threads} threads"
            );
        }
    });
}

/// Case study #1: workflow objective over a small fork-join dataset.
fn check_workflow(raws: &[Vec<f64>], n_threads: usize) {
    use lodcal::wfsim::prelude::*;
    let records = dataset_for(
        AppKind::Forkjoin,
        &DatasetOptions {
            repetitions: 1,
            size_indices: vec![0],
            work_indices: vec![0],
            footprint_indices: vec![0],
            worker_counts: vec![1, 2],
            ..Default::default()
        },
    );
    let scenarios = WfScenario::from_records(&records);
    let sim = WorkflowSimulator::new(SimulatorVersion::lowest_detail());
    let obj = objective(
        &sim,
        &scenarios,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
    );
    check_par_matches_seq(&obj, raws, n_threads);
}

/// Case study #2: MPI objective over a small Summit-style dataset.
fn check_mpi(raws: &[Vec<f64>], n_threads: usize) {
    use lodcal::mpisim::prelude::*;
    let cfg = MpiEmulatorConfig {
        repetitions: 1,
        ..Default::default()
    };
    let train = dataset(
        &[BenchmarkKind::PingPong, BenchmarkKind::BiRandom],
        &[8],
        &cfg,
        42,
    );
    let sim = MpiSimulator::new(MpiSimulatorVersion::lowest_detail());
    let obj = objective(&sim, &train, MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"));
    check_par_matches_seq(&obj, raws, n_threads);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn workflow_par_loss_matches_sequential_bit_for_bit(
        raws in proptest::collection::vec(proptest::collection::vec(0.0..=1.0f64, 16), 1..5usize),
    ) {
        check_workflow(&raws, 1);
        check_workflow(&raws, 4);
    }

    #[test]
    fn mpi_par_loss_matches_sequential_bit_for_bit(
        raws in proptest::collection::vec(proptest::collection::vec(0.0..=1.0f64, 16), 1..5usize),
    ) {
        check_mpi(&raws, 1);
        check_mpi(&raws, 4);
    }
}

/// Memoized hits are served for free: re-proposing an already-evaluated
/// point (directly or via a batch) returns the identical loss without
/// consuming a budget evaluation, on a real simulation objective under a
/// multi-threaded pool.
#[test]
fn memoized_hits_do_not_consume_budget_on_simulation_objective() {
    use lodcal::wfsim::prelude::*;
    let records = dataset_for(
        AppKind::Chain,
        &DatasetOptions {
            repetitions: 1,
            size_indices: vec![0],
            work_indices: vec![0],
            footprint_indices: vec![0],
            worker_counts: vec![1, 2],
            ..Default::default()
        },
    );
    let scenarios = WfScenario::from_records(&records);
    let sim = WorkflowSimulator::new(SimulatorVersion::lowest_detail());
    let obj = objective(
        &sim,
        &scenarios,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
    );
    pool(4).install(|| {
        let dim = obj.space().dim();
        let ev = Evaluator::new(&obj, Budget::Evaluations(8));
        let a = vec![0.3; dim];
        let b = vec![0.7; dim];
        let first = ev.eval(&a).unwrap();
        // Same point again: identical loss, no budget consumed.
        assert_eq!(ev.eval(&a), Some(first));
        assert_eq!(ev.evaluations(), 1);
        // Batch mixing the cached point with a fresh one: only the fresh
        // point burns budget, and the cached slot matches exactly.
        let losses = ev.eval_batch(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(losses[0].to_bits(), first.to_bits());
        assert_eq!(ev.evaluations(), 2);
        assert_eq!(ev.cache_hits(), 2);
        assert_eq!(ev.cache_misses(), 2);
    });
}
