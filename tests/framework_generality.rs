//! Integration tests of the calibration framework's generality and of the
//! methodology steps as a user composes them (paper §3): custom
//! simulators, budget fairness, loss/algorithm selection via synthetic
//! benchmarking, and trace semantics.

use lodcal::simcal::prelude::*;

/// A user-defined simulator with a known closed form (two-parameter
/// linear model of "execution time" vs input size).
struct LinearModel;

struct Obs {
    input_size: f64,
    observed: f64,
}

impl Simulator for LinearModel {
    type Scenario = Obs;
    type Output = ScenarioError;
    fn run(&self, obs: &Obs, calib: &Calibration) -> ScenarioError {
        let predicted = calib.values[0] * obs.input_size + calib.values[1];
        ScenarioError::scalar_only(relative_error(obs.observed, predicted))
    }
}

fn space2() -> ParameterSpace {
    ParameterSpace::new()
        .with("slope", ParamKind::Continuous { lo: 0.0, hi: 10.0 })
        .with("intercept", ParamKind::Continuous { lo: 0.0, hi: 100.0 })
}

fn observations() -> Vec<Obs> {
    [1.0, 5.0, 10.0, 50.0, 100.0]
        .into_iter()
        .map(|input_size| Obs {
            input_size,
            observed: 2.5 * input_size + 40.0,
        })
        .collect()
}

#[test]
fn custom_simulator_parameters_are_recovered() {
    let data = observations();
    let obj = SimulationObjective::new(
        &LinearModel,
        &data,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        space2(),
    );
    let result = Calibrator::bo_gp(Budget::Evaluations(400), 21).calibrate(&obj);
    assert!(result.loss < 0.05, "loss {}", result.loss);
    assert!(
        (result.calibration.values[0] - 2.5).abs() < 0.5,
        "slope {}",
        result.calibration.values[0]
    );
    assert!(
        (result.calibration.values[1] - 40.0).abs() < 10.0,
        "intercept {}",
        result.calibration.values[1]
    );
}

#[test]
fn equal_budgets_are_enforced_across_algorithms() {
    let data = observations();
    let obj = SimulationObjective::new(
        &LinearModel,
        &data,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        space2(),
    );
    for kind in AlgorithmKind::ALL {
        let r = Calibrator {
            algorithm: kind,
            budget: Budget::Evaluations(64),
            seed: 5,
        }
        .calibrate(&obj);
        assert_eq!(
            r.evaluations,
            64,
            "{} must consume the exact budget",
            kind.name()
        );
    }
}

#[test]
fn synthetic_benchmark_driver_picks_a_pair() {
    let reference = Calibration::new(vec![3.0, 60.0]);
    let slope = reference.values[0];
    let intercept = reference.values[1];
    // Synthetic ground truth from the model itself at the reference.
    let data: Vec<Obs> = [1.0, 10.0, 100.0]
        .into_iter()
        .map(|input_size| Obs {
            input_size,
            observed: slope * input_size + intercept,
        })
        .collect();

    let calibrators = vec![
        (
            "RAND".to_string(),
            Calibrator {
                algorithm: AlgorithmKind::Random,
                budget: Budget::Evaluations(150),
                seed: 2,
            },
        ),
        (
            "BO-GP".to_string(),
            Calibrator::bo_gp(Budget::Evaluations(150), 2),
        ),
    ];
    let objectives = vec![(
        "L1".to_string(),
        SimulationObjective::new(
            &LinearModel,
            &data,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
            space2(),
        ),
    )];
    let cells = synthetic_benchmark(&calibrators, &objectives, &reference);
    assert_eq!(cells.len(), 2);
    let best = best_pair(&cells).expect("cells present");
    assert!(
        best.calibration_error < 120.0,
        "best error {}",
        best.calibration_error
    );
}

#[test]
fn trace_is_consistent_with_final_result() {
    let data = observations();
    let obj = SimulationObjective::new(
        &LinearModel,
        &data,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        space2(),
    );
    let r = Calibrator::bo_gp(Budget::Evaluations(100), 13).calibrate(&obj);
    let last = r.trace.last().expect("at least one improvement");
    assert_eq!(last.best_loss, r.loss);
    assert!(last.evaluations <= r.evaluations);
    assert!(r.trace.windows(2).all(|w| w[1].best_loss < w[0].best_loss));
    assert!(r
        .trace
        .windows(2)
        .all(|w| w[1].elapsed_secs >= w[0].elapsed_secs));
}

#[test]
fn wallclock_budget_terminates_promptly() {
    let data = observations();
    let obj = SimulationObjective::new(
        &LinearModel,
        &data,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        space2(),
    );
    let start = std::time::Instant::now();
    let r = Calibrator::bo_gp(Budget::WallClock(std::time::Duration::from_millis(300)), 1)
        .calibrate(&obj);
    assert!(r.loss.is_finite());
    // Generous bound: a surrogate fit may be in flight when time expires.
    assert!(start.elapsed().as_secs_f64() < 10.0);
}
