//! End-to-end integration tests for case study #3 (batch scheduling),
//! plus serde persistence of ground-truth records across all four case
//! studies (users calibrate against saved datasets).

use lodcal::batchsim::prelude::*;
use lodcal::simcal::prelude::*;

#[test]
fn batch_calibration_beats_nominal_values() {
    let cfg = BatchEmulatorConfig::default();
    let grid = default_grid(3);
    let train = dataset(&grid[..2], &cfg, 2, 3);
    let test = dataset(&grid[2..4], &cfg, 2, 3);

    let version = BatchVersion::highest_detail();
    let sim = BatchSimulator::new(version, cfg.total_nodes);
    let obj = objective(
        &sim,
        &train,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
    );
    let result = Calibrator::bo_gp(Budget::Evaluations(150), 5).calibrate(&obj);

    let err = |calib: &Calibration| -> f64 {
        let errs: Vec<f64> = test
            .iter()
            .map(|s| relative_error(s.makespan, sim.simulate(&s.jobs, calib).makespan))
            .collect();
        numeric::mean(&errs)
    };
    let calibrated = err(&result.calibration);
    // Nominal values: speed 1.0, everything else mid-range guesswork.
    let space = version.parameter_space();
    let nominal = space.calibration_from_pairs(&[
        ("node_speed", 1.0),
        ("contention_coeff", 0.0),
        ("sched_cycle", 0.0),
        ("dispatch_overhead", 0.0),
    ]);
    let baseline = err(&nominal);
    assert!(
        calibrated < baseline,
        "calibrated {calibrated:.3} must beat nominal {baseline:.3}"
    );
}

#[test]
fn batch_ground_truth_records_roundtrip_through_json() {
    let cfg = BatchEmulatorConfig::default();
    let records = dataset(&default_grid(1)[..1], &cfg, 1, 2);
    let json = serde_json::to_string(&records).expect("serialize");
    let back: Vec<BatchGroundTruthRecord> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(records.len(), back.len());
    assert_eq!(records[0].makespan, back[0].makespan);
    assert_eq!(records[0].jobs, back[0].jobs);
    assert_eq!(records[0].turnarounds, back[0].turnarounds);
}

#[test]
fn workflow_ground_truth_records_roundtrip_through_json() {
    use lodcal::wfsim::prelude::*;
    let records = dataset_for(
        AppKind::Forkjoin,
        &DatasetOptions {
            repetitions: 1,
            size_indices: vec![0],
            work_indices: vec![0],
            footprint_indices: vec![0],
            worker_counts: vec![1],
            ..Default::default()
        },
    );
    let json = serde_json::to_string(&records).expect("serialize");
    let back: Vec<GroundTruthRecord> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), records.len());
    assert_eq!(back[0].spec, records[0].spec);
    assert_eq!(back[0].makespan, records[0].makespan);
    // The scenario can be rebuilt from the deserialized record.
    let s = WfScenario::from_record(&back[0]);
    assert_eq!(s.workflow.num_tasks(), back[0].spec.num_tasks);
}

#[test]
fn mpi_ground_truth_records_roundtrip_through_json() {
    use lodcal::mpisim::prelude::*;
    let cfg = MpiEmulatorConfig {
        repetitions: 2,
        ..Default::default()
    };
    let records = dataset(&[BenchmarkKind::PingPong], &[8], &cfg, 4);
    let json = serde_json::to_string(&records).expect("serialize");
    let back: Vec<MpiGroundTruthRecord> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back[0].samples, records[0].samples);
    assert_eq!(back[0].benchmark, records[0].benchmark);
}

#[test]
fn grid_ground_truth_records_roundtrip_through_json() {
    use lodcal::gridsim::prelude::*;
    let cfg = GridEmulatorConfig::default();
    let specs = [GridSpec {
        jobs: 12,
        files: 16,
        ..GridSpec::default()
    }];
    let records = dataset(&specs, &cfg, 1, 5);
    let json = serde_json::to_string(&records).expect("serialize");
    let back: Vec<GridGroundTruthRecord> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), records.len());
    assert_eq!(back[0].spec, records[0].spec);
    assert_eq!(back[0].makespan, records[0].makespan);
    assert_eq!(back[0].turnarounds, records[0].turnarounds);
}

#[test]
fn calibrations_and_spaces_roundtrip_through_json() {
    let version = BatchVersion::highest_detail();
    let space = version.parameter_space();
    let calib = space.denormalize(&vec![0.42; space.dim()]);
    let json = serde_json::to_string(&(&space, &calib)).expect("serialize");
    let (space2, calib2): (ParameterSpace, Calibration) =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(space, space2);
    assert_eq!(calib, calib2);
    // The deserialized pair still works together.
    assert_eq!(
        space2.value(&calib2, "node_speed"),
        space.value(&calib, "node_speed")
    );
}
